"""End-to-end integration tests: full workloads through the full stack.

These are the repository's "does the paper's story hold" checks, run at a
reduced instruction budget so the suite stays fast.  The benchmark harness
re-runs the same experiments at full size.
"""

import pytest

from repro import (
    ProcessorConfig,
    PubsConfig,
    ResultCache,
    SimJob,
    SweepExecutor,
    run_pair,
    run_workload,
)
from repro.exec.jobs import job_key

N = 6000
SKIP = 12000

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()


@pytest.fixture(scope="module")
def sjeng_pair():
    return run_pair("sjeng", BASE, PUBS, instructions=N, skip=SKIP)


@pytest.fixture(scope="module")
def mcf_pair():
    return run_pair("mcf", BASE, PUBS, instructions=N, skip=SKIP)


class TestHeadlineResult:
    def test_pubs_speeds_up_sjeng(self, sjeng_pair):
        """The paper's best case: a large positive speedup."""
        assert sjeng_pair.speedup_percent > 8.0

    def test_sjeng_is_difficult_branch_prediction(self, sjeng_pair):
        assert sjeng_pair.base.stats.is_difficult_branch_prediction

    def test_sjeng_is_compute_intensive(self, sjeng_pair):
        assert not sjeng_pair.base.stats.is_memory_intensive

    def test_pubs_cuts_iq_wait(self, sjeng_pair):
        assert (sjeng_pair.variant.stats.avg_missspec_iq_wait
                < 0.6 * sjeng_pair.base.stats.avg_missspec_iq_wait)

    def test_misspeculation_penalty_reduced(self, sjeng_pair):
        assert (sjeng_pair.variant.stats.avg_missspec_penalty
                < sjeng_pair.base.stats.avg_missspec_penalty)

    def test_mcf_unaffected(self, mcf_pair):
        """The paper's worst case: ~0.3% speedup on mcf."""
        assert abs(mcf_pair.speedup_percent) < 2.0

    def test_mcf_is_memory_intensive(self, mcf_pair):
        assert mcf_pair.base.stats.is_memory_intensive
        assert mcf_pair.base.stats.llc_mpki > 10

    def test_unconfident_rate_substantial_on_hard_program(self, sjeng_pair):
        rate = sjeng_pair.variant.unconfident_branch_rate
        assert rate > 0.15


class TestEasyPrograms:
    def test_easy_program_unaffected(self):
        pair = run_pair("hmmer", BASE, PUBS, instructions=N, skip=SKIP)
        assert not pair.base.stats.is_difficult_branch_prediction
        assert abs(pair.speedup_percent) < 4.0

    def test_streaming_program_unaffected(self):
        pair = run_pair("libquantum", BASE, PUBS, instructions=N, skip=SKIP)
        assert abs(pair.speedup_percent) < 4.0


class TestModeSwitch:
    def test_mode_switch_engages_on_mcf(self, mcf_pair):
        assert mcf_pair.variant.mode_switch_disabled_fraction > 0.9

    def test_mode_switch_stays_off_on_sjeng(self, sjeng_pair):
        assert sjeng_pair.variant.mode_switch_disabled_fraction < 0.1


class TestVariantMachines:
    def test_age_matrix_machine(self):
        r = run_workload("sjeng", BASE.with_age_matrix(), instructions=N,
                         skip=SKIP)
        assert r.stats.committed == N

    def test_pubs_plus_age(self):
        r = run_workload("sjeng", PUBS.with_age_matrix(), instructions=N,
                         skip=SKIP)
        assert r.stats.committed == N

    def test_blind_pubs_positive_but_below_full_pubs(self):
        blind_cfg = BASE.with_pubs(PubsConfig(blind=True))
        pair_blind = run_pair("sjeng", BASE, blind_cfg, instructions=N, skip=SKIP)
        pair_full = run_pair("sjeng", BASE, PUBS, instructions=N, skip=SKIP)
        assert pair_blind.speedup_percent > 0
        assert pair_full.speedup_percent > pair_blind.speedup_percent - 3.0

    def test_enlarged_predictor_gains_less_than_pubs(self):
        """Fig. 13: spending the PUBS budget on a larger perceptron yields
        marginal gains."""
        big = BASE.with_overrides(predictor=BASE.predictor.enlarged())
        pair_pred = run_pair("sjeng", BASE, big, instructions=N, skip=SKIP)
        pair_pubs = run_pair("sjeng", BASE, PUBS, instructions=N, skip=SKIP)
        assert pair_pubs.speedup_percent > pair_pred.speedup_percent

    def test_size_scaled_machines_run(self):
        from repro import size_models
        for name, cfg in size_models().items():
            r = run_workload("gcc", cfg, instructions=2000, skip=4000)
            assert r.stats.committed == 2000, name


class TestVerifiedRuns:
    def test_commit_only_verified_run_end_to_end(self):
        """A full workload under the differential oracle: every commit is
        cross-checked and the timing result is untouched."""
        result = run_workload("sjeng", BASE.with_verification("commit-only"),
                              instructions=2000, skip=4000, cache=False)
        plain = run_workload("sjeng", BASE, instructions=2000, skip=4000,
                             cache=False)
        assert result.verify_level == "commit-only"
        assert result.verified_commits == 2000
        assert result.stats == plain.stats

    def test_verified_and_unverified_runs_have_distinct_cache_keys(self):
        budget = dict(instructions=500, skip=500)
        plain = SimJob.make("sjeng", BASE, **budget)
        checked = SimJob.make("sjeng", BASE.with_verification("commit-only"),
                              **budget)
        full = SimJob.make("sjeng", BASE.with_verification("full"), **budget)
        keys = {job_key(plain), job_key(checked), job_key(full)}
        assert len(keys) == 3
        # The interval knob is hashed too: a sparser sweep is a weaker check.
        sparse = SimJob.make(
            "sjeng", BASE.with_verification("full", interval=1024), **budget)
        assert job_key(sparse) not in keys

    def test_warm_cache_keeps_runs_separate(self, tmp_path):
        """Round-trip through the persistent cache: a verified and an
        unverified run of the same experiment never share an entry."""
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        jobs = [SimJob.make("sjeng", BASE, 500, 500),
                SimJob.make("sjeng", BASE.with_verification("commit-only"),
                            500, 500)]
        cold = executor.run(jobs)
        assert executor.simulations_run == 2  # no false sharing
        assert [r.verified_commits for r in cold] == [0, 500]
        warm = executor.run(jobs)
        assert executor.simulations_run == 2  # both served from the cache
        assert [r.verified_commits for r in warm] == [0, 500]
        assert [r.verify_level for r in warm] == ["off", "commit-only"]


class TestCrossConfigInvariants:
    def test_same_dynamic_stream_across_configs(self, sjeng_pair):
        """Base and PUBS run the identical architectural stream: committed
        conditional-branch counts match exactly."""
        assert (sjeng_pair.base.stats.cond_branches
                == sjeng_pair.variant.stats.cond_branches)

    def test_predictor_accuracy_unchanged_by_pubs(self, sjeng_pair):
        """PUBS does not touch the direction predictor."""
        assert sjeng_pair.base.predictor_accuracy == pytest.approx(
            sjeng_pair.variant.predictor_accuracy, abs=0.02)

    def test_mispredictions_equal_across_configs(self, sjeng_pair):
        assert (sjeng_pair.base.stats.mispredictions
                == sjeng_pair.variant.stats.mispredictions)
