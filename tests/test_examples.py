"""Every example script must run end to end (tiny budgets)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name, argv):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_has_at_least_three_scripts():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3
    assert "quickstart.py" in scripts


def test_quickstart(capsys):
    _run_example("quickstart.py", ["1500"])
    out = capsys.readouterr().out
    assert "PUBS speedup" in out and "IQ wait" in out


def test_slice_anatomy(capsys):
    _run_example("slice_anatomy.py", [])
    out = capsys.readouterr().out
    assert "SLICE" in out
    assert out.count("pass") >= 1


def test_design_space(capsys):
    _run_example("design_space.py", ["1200"])
    out = capsys.readouterr().out
    assert "entries" in out and "best configuration" in out


def test_memory_bound_study(capsys):
    _run_example("memory_bound_study.py", ["1200"])
    out = capsys.readouterr().out
    assert "mcf" in out and "windows disabled" in out


def test_workload_characterization(capsys):
    _run_example("workload_characterization.py", ["1200"])
    out = capsys.readouterr().out
    assert "slice coverage" in out


def test_misprediction_timeline(capsys):
    _run_example("misprediction_timeline.py", ["sjeng", "1500"])
    out = capsys.readouterr().out
    assert "IQ wait" in out and "PUBS" in out


def test_full_evaluation_smoke(capsys, monkeypatch):
    """The full evaluation is the long-running example; smoke-test it on a
    trimmed workload list by monkeypatching the profile set."""
    import repro.workloads.profiles as profiles

    full = profiles.spec2006_profiles

    def tiny():
        all_profiles = full()
        return {k: all_profiles[k] for k in ("sjeng", "hmmer")}

    monkeypatch.setattr(profiles, "spec2006_profiles", tiny)
    monkeypatch.setattr("repro.workloads.spec2006_profiles", tiny)
    monkeypatch.setattr("repro.spec2006_profiles", tiny)
    _run_example("full_evaluation.py", ["800", "800"])
    out = capsys.readouterr().out
    assert "GM" in out
