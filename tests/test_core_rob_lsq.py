"""Unit tests for the reorder buffer and load/store queue."""

import pytest

from repro.core import LoadStoreQueue, ReorderBuffer, Uop
from repro.isa import Opcode, StaticInst


def _uop(seq, opcode=Opcode.ADDI, addr=None, correct=True):
    if opcode is Opcode.LOAD:
        inst = StaticInst(seq * 4, Opcode.LOAD, dest=1, src1=2)
    elif opcode is Opcode.STORE:
        inst = StaticInst(seq * 4, Opcode.STORE, src1=1, src2=2)
    else:
        inst = StaticInst(seq * 4, opcode, dest=1, src1=2, imm=1)
    uop = Uop(seq, inst, fetch_cycle=0, on_correct_path=correct,
              trace_seq=seq if correct else -1)
    uop.mem_addr = addr
    return uop


class TestReorderBuffer:
    def test_fifo_commit_order(self):
        rob = ReorderBuffer(4)
        a, b = _uop(0), _uop(1)
        rob.append(a)
        rob.append(b)
        assert rob.head() is a
        assert rob.pop_head() is a
        assert rob.head() is b

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.append(_uop(0))
        rob.append(_uop(1))
        assert rob.is_full() and rob.free_entries == 0
        with pytest.raises(OverflowError):
            rob.append(_uop(2))

    def test_fetch_order_enforced(self):
        rob = ReorderBuffer(4)
        rob.append(_uop(5))
        with pytest.raises(ValueError):
            rob.append(_uop(3))

    def test_squash_younger(self):
        rob = ReorderBuffer(8)
        uops = [_uop(i) for i in range(5)]
        for u in uops:
            rob.append(u)
        squashed = rob.squash_younger(2)
        assert [u.seq for u in squashed] == [3, 4]
        assert [u.seq for u in rob] == [0, 1, 2]

    def test_squash_none(self):
        rob = ReorderBuffer(4)
        rob.append(_uop(0))
        assert rob.squash_younger(10) == []

    def test_empty_head(self):
        assert ReorderBuffer(4).head() is None

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)


class TestLoadStoreQueue:
    def test_capacity(self):
        lsq = LoadStoreQueue(2)
        lsq.insert(_uop(0, Opcode.LOAD, addr=0x100))
        lsq.insert(_uop(1, Opcode.LOAD, addr=0x200))
        assert lsq.is_full()
        with pytest.raises(OverflowError):
            lsq.insert(_uop(2, Opcode.LOAD, addr=0x300))

    def test_forwarding_same_word(self):
        lsq = LoadStoreQueue(8)
        store = _uop(0, Opcode.STORE, addr=0x100)
        load = _uop(1, Opcode.LOAD, addr=0x100)
        lsq.insert(store)
        lsq.insert(load)
        assert load.store_dep is store
        assert lsq.forwards == 1

    def test_no_forwarding_across_words(self):
        lsq = LoadStoreQueue(8)
        lsq.insert(_uop(0, Opcode.STORE, addr=0x100))
        load = _uop(1, Opcode.LOAD, addr=0x108)
        lsq.insert(load)
        assert load.store_dep is None

    def test_same_word_different_bytes_forwards(self):
        lsq = LoadStoreQueue(8)
        store = _uop(0, Opcode.STORE, addr=0x100)
        load = _uop(1, Opcode.LOAD, addr=0x104)
        lsq.insert(store)
        lsq.insert(load)
        assert load.store_dep is store

    def test_youngest_older_store_wins(self):
        lsq = LoadStoreQueue(8)
        s1 = _uop(0, Opcode.STORE, addr=0x100)
        s2 = _uop(1, Opcode.STORE, addr=0x100)
        load = _uop(2, Opcode.LOAD, addr=0x100)
        lsq.insert(s1)
        lsq.insert(s2)
        lsq.insert(load)
        assert load.store_dep is s2

    def test_wrong_path_load_never_forwards(self):
        lsq = LoadStoreQueue(8)
        lsq.insert(_uop(0, Opcode.STORE, addr=0x100))
        load = _uop(1, Opcode.LOAD, addr=0x100, correct=False)
        load.mem_addr = None  # wrong-path loads carry no address
        lsq.insert(load)
        assert load.store_dep is None

    def test_wrong_path_store_not_a_forward_source(self):
        lsq = LoadStoreQueue(8)
        ws = _uop(0, Opcode.STORE, addr=0x100, correct=False)
        lsq.insert(ws)
        load = _uop(1, Opcode.LOAD, addr=0x100)
        lsq.insert(load)
        assert load.store_dep is None

    def test_commit_releases_oldest_only(self):
        lsq = LoadStoreQueue(4)
        a = _uop(0, Opcode.LOAD, addr=0x100)
        b = _uop(1, Opcode.LOAD, addr=0x200)
        lsq.insert(a)
        lsq.insert(b)
        with pytest.raises(ValueError):
            lsq.remove_committed(b)
        lsq.remove_committed(a)
        assert not a.in_lsq and len(lsq) == 1

    def test_squash_younger(self):
        lsq = LoadStoreQueue(8)
        uops = [_uop(i, Opcode.LOAD, addr=0x100 * i) for i in range(4)]
        for u in uops:
            lsq.insert(u)
        dropped = lsq.squash_younger(1)
        assert [u.seq for u in dropped] == [2, 3]
        assert all(not u.in_lsq for u in dropped)
        assert len(lsq) == 2

    def test_fetch_order_enforced(self):
        lsq = LoadStoreQueue(4)
        lsq.insert(_uop(5, Opcode.LOAD, addr=0x100))
        with pytest.raises(ValueError):
            lsq.insert(_uop(2, Opcode.LOAD, addr=0x200))
