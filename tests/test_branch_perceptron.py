"""Unit tests for the perceptron predictor."""

import pytest

from repro.branch import PerceptronPredictor


class TestConstruction:
    def test_theta_formula(self):
        p = PerceptronPredictor(history_length=34)
        assert p.theta == int(1.93 * 34 + 14)

    def test_storage_bits_table_i_size(self):
        # Table I: 34-bit history, 256-entry table -> (34+1)*8 bits/entry.
        p = PerceptronPredictor(34, 256)
        assert p.storage_bits() == 256 * 35 * 8 + 34
        assert 8.0 < p.storage_kib() < 9.0

    def test_enlarged_predictor_cost_delta(self):
        # Fig. 13: enlarging to 36-bit/512 entries adds ~8.4 KB in the
        # paper's costing; with our 8-bit weights it is ~9.8 KB -- still
        # "more than double the cost of the default branch predictor".
        small = PerceptronPredictor(34, 256)
        large = PerceptronPredictor(36, 512)
        delta = large.storage_kib() - small.storage_kib()
        assert 8.0 < delta < 10.5
        assert delta > small.storage_kib()  # more than doubles the budget

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(history_length=0)
        with pytest.raises(ValueError):
            PerceptronPredictor(table_size=0)


class TestLearning:
    def _train(self, predictor, pc, outcomes):
        correct = 0
        for taken in outcomes:
            pred = predictor.predict(pc)
            if pred == taken:
                correct += 1
            predictor.update(pc, taken, pred)
        return correct / len(outcomes)

    def test_learns_always_taken(self):
        p = PerceptronPredictor(16, 64)
        acc = self._train(p, 0x40, [True] * 200)
        assert acc > 0.95

    def test_learns_alternating_pattern(self):
        p = PerceptronPredictor(16, 64)
        pattern = [True, False] * 200
        acc_late = self._train(p, 0x40, pattern[200:])
        assert acc_late > 0.9

    def test_learns_periodic_pattern(self):
        p = PerceptronPredictor(34, 256)
        pattern = ([True] * 7 + [False]) * 100
        self._train(p, 0x40, pattern[:400])
        acc = self._train(p, 0x40, pattern[400:])
        assert acc > 0.9

    def test_random_pattern_near_chance(self):
        import random
        rng = random.Random(42)
        p = PerceptronPredictor(34, 256)
        outcomes = [rng.random() < 0.5 for _ in range(2000)]
        acc = self._train(p, 0x40, outcomes)
        assert 0.35 < acc < 0.65

    def test_biased_random_tracks_majority(self):
        import random
        rng = random.Random(7)
        p = PerceptronPredictor(34, 256)
        outcomes = [rng.random() < 0.875 for _ in range(2000)]
        acc = self._train(p, 0x40, outcomes[500:])
        assert acc > 0.8

    def test_weights_saturate(self):
        p = PerceptronPredictor(4, 4)
        for _ in range(1000):
            pred = p.predict(0)
            p.update(0, True, pred)
        for row in p._weights:
            for w in row:
                assert -128 <= w <= 127

    def test_stats_recorded(self):
        p = PerceptronPredictor(8, 16)
        pred = p.predict(0)
        p.update(0, not pred, pred)
        assert p.stats.predictions == 1
        assert p.stats.mispredictions == 1
        assert p.stats.accuracy == 0.0

    def test_different_pcs_use_different_rows(self):
        p = PerceptronPredictor(8, 16)
        # Train pc A strongly taken; an untrained aliased-free pc keeps bias 0.
        for _ in range(100):
            pred = p.predict(0x0)
            p.update(0x0, True, pred)
        assert p.predict(0x0)
        # Row for pc 4 (word 1) is untouched; output 0 -> predicted taken
        # (>= 0), but its weights must still all be zero.
        assert all(w == 0 for w in p._weights[1])
