"""Property-based tests: resetting counters and the set-associative tables.

Hypothesis drives the structures with random operation sequences and holds
them to the same laws the pipeline invariants enforce
(:func:`repro.verify.invariants.check_conf_tab` /
:func:`check_brslice_tab`), plus behavioural properties an example-based
test cannot cover exhaustively: saturation arithmetic for arbitrary widths
and histories, MRU/replacement discipline under aliasing, and agreement
with an independent reference model.  Profiles are pinned in
``tests/conftest.py`` ("ci" derandomizes), so CI runs are reproducible.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.branch.confidence import (
    IdealConfidenceEstimator,
    ResettingConfidenceCounter,
)
from repro.pubs.tables import BrsliceTab, ConfTab
from repro.verify import check_brslice_tab, check_conf_tab

# Small geometries stress replacement and aliasing far harder than the
# paper's 256-set defaults would at these example counts.
SMALL_SETS = 8
SMALL_ASSOC = 2
SMALL_FOLD = 4
SMALL_BITS = 3

#: Word-aligned PCs in a range small enough to force set/tag collisions.
pcs = st.integers(min_value=0, max_value=255).map(lambda n: n * 4)
outcomes = st.lists(st.booleans(), max_size=120)


class TestResettingCounterProperties:
    @given(bits=st.integers(1, 10), history=outcomes)
    def test_range_and_saturation_law_under_any_history(self, bits, history):
        counter = ResettingConfidenceCounter(bits)
        for correct in history:
            counter.train(correct)
            assert 0 <= counter.value <= counter.maximum
            assert counter.confident == (counter.value == counter.maximum)

    @given(bits=st.integers(1, 10), history=outcomes)
    def test_value_is_the_correct_streak_capped_at_maximum(self, bits,
                                                           history):
        counter = ResettingConfidenceCounter(bits)
        streak = 0
        for correct in history:
            counter.train(correct)
            streak = streak + 1 if correct else 0
            assert counter.value == min(streak, counter.maximum)

    @given(bits=st.integers(1, 10))
    def test_allocation_resets(self, bits):
        counter = ResettingConfidenceCounter(bits)
        counter.reset_to_correct()
        assert counter.confident and counter.value == counter.maximum
        counter.reset_to_incorrect()
        assert not counter.confident and counter.value == 0

    @given(bits=st.integers(1, 10), prefix=outcomes)
    def test_one_misprediction_always_destroys_confidence(self, bits, prefix):
        counter = ResettingConfidenceCounter(bits)
        for correct in prefix:
            counter.train(correct)
        counter.train(False)
        assert counter.value == 0 and not counter.confident


class TestIdealEstimatorProperties:
    @given(ops=st.lists(st.tuples(pcs, st.booleans()), max_size=120))
    def test_matches_independent_reference_model(self, ops):
        estimator = IdealConfidenceEstimator(counter_bits=SMALL_BITS)
        maximum = (1 << SMALL_BITS) - 1
        model = {}  # pc -> counter value, an independent reimplementation
        for pc, correct in ops:
            if pc not in model:
                model[pc] = maximum if correct else 0
            elif correct:
                model[pc] = min(model[pc] + 1, maximum)
            else:
                model[pc] = 0
            estimator.train(pc, correct)
        for pc in {pc for pc, _ in ops}:
            assert estimator.is_confident(pc) == (model[pc] == maximum)

    @given(pc=pcs)
    def test_unallocated_branch_is_confident(self, pc):
        assert IdealConfidenceEstimator().is_confident(pc)


class TestConfTabProperties:
    @given(ops=st.lists(st.tuples(pcs, st.booleans()), max_size=120))
    def test_invariants_hold_under_any_training_sequence(self, ops):
        conf = ConfTab(num_sets=SMALL_SETS, assoc=SMALL_ASSOC,
                       fold_width=SMALL_FOLD, counter_bits=SMALL_BITS)
        for pc, correct in ops:
            conf.train(pc, correct)
            check_conf_tab(conf)  # shape, width, range, saturation flag
            # MRU insertion: what was just trained is always resident.
            counter = conf.counter_for_pc(pc)
            assert counter is not None
            assert counter.confident == conf.is_confident_pc(pc)

    @given(ops=st.lists(st.tuples(pcs, st.booleans()), min_size=1,
                        max_size=120))
    def test_pointer_and_pc_lookups_agree(self, ops):
        conf = ConfTab(num_sets=SMALL_SETS, assoc=SMALL_ASSOC,
                       fold_width=SMALL_FOLD, counter_bits=SMALL_BITS)
        for pc, correct in ops:
            conf.train(pc, correct)
        pc = ops[-1][0]
        assert conf.counter_for_pointer(conf.pointer(pc)) is conf.counter_for_pc(pc)


class TestBrsliceTabProperties:
    @given(ops=st.lists(st.tuples(pcs, pcs), max_size=120))
    def test_invariants_hold_under_any_link_sequence(self, ops):
        brslice = BrsliceTab(num_sets=SMALL_SETS, assoc=SMALL_ASSOC,
                             fold_width=SMALL_FOLD)
        conf = ConfTab(num_sets=SMALL_SETS, assoc=SMALL_ASSOC,
                       fold_width=SMALL_FOLD, counter_bits=SMALL_BITS)
        for inst_pc, branch_pc in ops:
            brslice.link(brslice.codec.pointer(inst_pc),
                         conf.pointer(branch_pc))
            # Geometry validity of every stored pointer, set shape, tags.
            check_brslice_tab(brslice, conf)
            # The link just written is immediately readable (MRU-first).
            assert brslice.lookup(inst_pc) == conf.pointer(branch_pc)

    @given(ops=st.lists(st.tuples(pcs, pcs), max_size=120), probe=pcs)
    def test_lookups_only_return_structurally_valid_pointers(self, ops,
                                                             probe):
        brslice = BrsliceTab(num_sets=SMALL_SETS, assoc=SMALL_ASSOC,
                             fold_width=SMALL_FOLD)
        conf = ConfTab(num_sets=SMALL_SETS, assoc=SMALL_ASSOC,
                       fold_width=SMALL_FOLD, counter_bits=SMALL_BITS)
        for inst_pc, branch_pc in ops:
            brslice.link(brslice.codec.pointer(inst_pc),
                         conf.pointer(branch_pc))
        found = brslice.lookup(probe)
        if found is not None:
            assert 0 <= found.index < conf.codec.num_sets
            assert 0 <= found.tag < (1 << conf.codec.fold_width)

    @given(ops=st.lists(st.tuples(pcs, pcs), max_size=120))
    def test_associativity_is_never_exceeded(self, ops):
        brslice = BrsliceTab(num_sets=SMALL_SETS, assoc=SMALL_ASSOC,
                             fold_width=SMALL_FOLD)
        conf = ConfTab(num_sets=SMALL_SETS, assoc=SMALL_ASSOC,
                       fold_width=SMALL_FOLD, counter_bits=SMALL_BITS)
        for inst_pc, branch_pc in ops:
            brslice.link(brslice.codec.pointer(inst_pc),
                         conf.pointer(branch_pc))
        assert all(len(ways) <= SMALL_ASSOC for ways in brslice._sets)
        assert sum(len(ways) for ways in brslice._sets) <= SMALL_SETS * SMALL_ASSOC
