"""Integration tests for the out-of-order pipeline on micro-programs with
known timing behaviour."""

import pytest

from repro.core import DeadlockError, Pipeline, ProcessorConfig, simulate
from repro.pubs import PubsConfig

from tests.microprograms import (
    counted_branch_program,
    dependent_chain_program,
    independent_alu_program,
    mul_chain_program,
    pointer_chase_program,
    random_branch_program,
    store_load_forward_program,
)


BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()


class TestThroughputLimits:
    def test_ilp_program_reaches_high_ipc(self):
        # The 2-iALU limit bounds this at 2.0; the random queue's position-
        # based select loses some of it to ROB-head starvation (the IPC
        # penalty Sec. III-B1 attributes to random queues).
        stats = Pipeline(independent_alu_program()).run(3000)
        assert stats.ipc > 1.4

    def test_dependent_chain_ipc_near_one(self):
        stats = Pipeline(dependent_chain_program()).run(3000)
        assert 0.8 < stats.ipc < 1.3

    def test_mul_chain_ipc_near_third(self):
        stats = Pipeline(mul_chain_program()).run(3000)
        assert 0.25 < stats.ipc < 0.45

    def test_ipc_never_exceeds_width(self):
        stats = Pipeline(independent_alu_program(16)).run(3000)
        assert stats.ipc <= BASE.issue_width


class TestBranchHandling:
    def test_predictable_branch_low_mpki(self):
        stats = Pipeline(counted_branch_program()).run(5000, skip_instructions=5000)
        assert stats.branch_mpki < 5

    def test_random_branch_high_mpki(self):
        stats = Pipeline(random_branch_program()).run(5000, skip_instructions=2000)
        # One 50/50 branch every ~11 committed instructions -> ~45 MPKI.
        assert stats.branch_mpki > 25

    def test_mispredictions_cause_wrong_path_fetch(self):
        stats = Pipeline(random_branch_program()).run(3000, skip_instructions=1000)
        assert stats.wrong_path_fetched > 0
        assert stats.missspec_penalty_cycles > 0

    def test_no_wrong_path_without_mispredictions(self):
        stats = Pipeline(independent_alu_program()).run(2000)
        assert stats.mispredictions == 0
        assert stats.wrong_path_fetched == 0

    def test_misprediction_decomposition_sums(self):
        stats = Pipeline(random_branch_program()).run(3000, skip_instructions=1000)
        total = (stats.missspec_frontend_cycles + stats.missspec_iq_wait_cycles
                 + stats.missspec_execute_cycles)
        assert total == stats.missspec_penalty_cycles

    def test_recovery_preserves_architectural_stream(self):
        """After many recoveries the committed count still reaches the
        target exactly (no lost or duplicated instructions)."""
        stats = Pipeline(random_branch_program()).run(4000)
        assert stats.committed == 4000


class TestMemoryBehaviour:
    def test_store_load_forwarding_used(self):
        pipe = Pipeline(store_load_forward_program())
        pipe.run(2000)
        assert pipe.lsq.forwards > 100

    def test_pointer_chase_is_memory_bound(self):
        stats = Pipeline(pointer_chase_program()).run(600)
        assert stats.ipc < 0.2
        assert stats.llc_mpki > 100

    def test_prewarm_regions_respected(self):
        prog = pointer_chase_program()
        prog.warm_regions.append((1 << 30, 64 * 1024))  # warm a small window
        stats = Pipeline(prog).run(300)
        assert stats.committed == 300


class TestDeterminism:
    def test_same_run_twice_identical(self):
        s1 = Pipeline(random_branch_program(), PUBS).run(2000)
        s2 = Pipeline(random_branch_program(), PUBS).run(2000)
        assert s1.cycles == s2.cycles
        assert s1.mispredictions == s2.mispredictions
        assert s1.iq_occupancy_sum == s2.iq_occupancy_sum


class TestPubsMechanics:
    def test_priority_dispatches_happen(self):
        pipe = Pipeline(random_branch_program(), PUBS)
        pipe.run(3000, skip_instructions=1000)
        assert pipe.iq.priority_dispatches > 0

    def test_base_never_uses_priority_entries(self):
        pipe = Pipeline(random_branch_program(), BASE)
        pipe.run(2000)
        assert pipe.iq.priority_dispatches == 0
        assert pipe.iq.priority_entries == 0

    def test_pubs_reduces_iq_wait_on_hard_branches(self):
        base_stats = Pipeline(random_branch_program(), BASE).run(
            4000, skip_instructions=1000)
        pubs_stats = Pipeline(random_branch_program(), PUBS).run(
            4000, skip_instructions=1000)
        assert pubs_stats.avg_missspec_iq_wait < base_stats.avg_missspec_iq_wait

    def test_nonstall_policy_runs(self):
        cfg = BASE.with_pubs(PubsConfig(stall_policy=False))
        stats = Pipeline(random_branch_program(), cfg).run(2000)
        assert stats.committed == 2000
        assert stats.priority_stall_cycles == 0

    def test_stall_policy_counts_stalls(self):
        cfg = BASE.with_pubs(PubsConfig(priority_entries=2))
        pipe = Pipeline(random_branch_program(), cfg)
        stats = pipe.run(3000, skip_instructions=500)
        assert stats.priority_stall_cycles > 0

    def test_blind_mode_runs(self):
        cfg = BASE.with_pubs(PubsConfig(blind=True))
        stats = Pipeline(random_branch_program(), cfg).run(2000)
        assert stats.committed == 2000

    def test_mode_switch_disables_on_memory_phase(self):
        cfg = BASE.with_pubs(PubsConfig(mode_switch_interval=256))
        pipe = Pipeline(pointer_chase_program(), cfg)
        pipe.run(600)
        assert pipe.mode_switch.stats.disabled_windows > 0


class TestAgeMatrixIntegration:
    def test_age_matrix_machine_runs(self):
        stats = Pipeline(random_branch_program(), BASE.with_age_matrix()).run(2000)
        assert stats.committed == 2000

    def test_age_grants_recorded(self):
        pipe = Pipeline(independent_alu_program(), BASE.with_age_matrix())
        pipe.run(2000)
        assert pipe.select_logic.stats.age_grants > 0

    def test_pubs_plus_age_runs(self):
        cfg = PUBS.with_age_matrix()
        stats = Pipeline(random_branch_program(), cfg).run(2000)
        assert stats.committed == 2000


class TestIqOrganizations:
    def test_all_organizations_run_to_completion(self):
        for org in ("random", "shifting", "circular"):
            cfg = BASE.with_overrides(iq_organization=org)
            stats = Pipeline(random_branch_program(), cfg).run(2000)
            assert stats.committed == 2000, org

    def test_shifting_beats_random_ipc(self):
        """Sec. III-B1: age-ordered selection has better IPC than random."""
        shifting = BASE.with_overrides(iq_organization="shifting")
        s_rand = Pipeline(random_branch_program(), BASE).run(
            3000, skip_instructions=500)
        s_shift = Pipeline(random_branch_program(), shifting).run(
            3000, skip_instructions=500)
        assert s_shift.ipc > s_rand.ipc

    def test_pubs_requires_random_queue(self):
        with pytest.raises(ValueError):
            PUBS.with_overrides(iq_organization="shifting")

    def test_age_matrix_requires_random_queue(self):
        with pytest.raises(ValueError):
            BASE.with_age_matrix().with_overrides(iq_organization="circular")

    def test_unknown_organization_rejected(self):
        with pytest.raises(ValueError):
            BASE.with_overrides(iq_organization="fifo")


class TestDriverApi:
    def test_simulate_returns_result(self):
        result = simulate(independent_alu_program(), BASE, max_instructions=1000)
        assert result.stats.committed == 1000
        assert result.program_name == "ilp"
        assert 0 <= result.predictor_accuracy <= 1
        assert "IPC" in result.summary()

    def test_max_cycles_deadlock_guard(self):
        with pytest.raises(DeadlockError):
            Pipeline(pointer_chase_program()).run(10_000, max_cycles=50)

    def test_invalid_instruction_count(self):
        with pytest.raises(ValueError):
            Pipeline(independent_alu_program()).run(0)

    def test_skip_fast_forwards_program_state(self):
        """Skipping trains the predictor: the counted branch is already
        learned when timing starts."""
        cold = Pipeline(counted_branch_program()).run(2000)
        warm = Pipeline(counted_branch_program()).run(2000, skip_instructions=8000)
        assert warm.mispredictions <= cold.mispredictions
