"""Tests for the offline slice analysis, including cross-validation of the
hardware slice tracker against the exact dataflow ground truth."""

import pytest

from repro.analysis.slices import (
    branch_slices,
    build_dataflow_graph,
    characterize_window,
    dynamic_slice,
    slice_depth,
)
from repro.isa import FunctionalExecutor, Opcode, Program, StaticInst
from repro.pubs import SliceTracker
from repro.workloads import build_program, get_profile


def _kernel():
    """The Fig. 2-style example: a branch slice and a computation slice."""
    return Program("kernel", [
        StaticInst(0, Opcode.MOVI, dest=1, imm=3),          # -> branch slice
        StaticInst(4, Opcode.ADDI, dest=2, src1=1, imm=1),  # -> branch slice
        StaticInst(8, Opcode.MOVI, dest=5, imm=7),          # -> comp slice
        StaticInst(12, Opcode.ADDI, dest=6, src1=5, imm=2), # comp slice leaf
        StaticInst(16, Opcode.BEQZ, src1=2, target=0),      # branch leaf
    ])


class TestGraphConstruction:
    def test_edges_follow_register_dataflow(self):
        records = FunctionalExecutor(_kernel()).run(5)
        graph = build_dataflow_graph(records)
        assert graph.has_edge(0, 1)   # movi r1 -> addi r2
        assert graph.has_edge(1, 4)   # addi r2 -> beqz
        assert graph.has_edge(2, 3)   # movi r5 -> addi r6
        assert not graph.has_edge(2, 4)

    def test_overwrite_breaks_dependence(self):
        prog = Program("p", [
            StaticInst(0, Opcode.MOVI, dest=1, imm=1),
            StaticInst(4, Opcode.MOVI, dest=1, imm=2),   # overwrites
            StaticInst(8, Opcode.ADDI, dest=2, src1=1, imm=0),
        ])
        graph = build_dataflow_graph(FunctionalExecutor(prog).run(3))
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(0, 2)


class TestSlices:
    def test_branch_slice_members(self):
        records = FunctionalExecutor(_kernel()).run(5)
        graph = build_dataflow_graph(records)
        assert dynamic_slice(graph, 4) == {0, 1, 4}

    def test_computation_slice_members(self):
        records = FunctionalExecutor(_kernel()).run(5)
        graph = build_dataflow_graph(records)
        assert dynamic_slice(graph, 3) == {2, 3}

    def test_slices_exclusive_in_fig2_example(self):
        records = FunctionalExecutor(_kernel()).run(5)
        graph = build_dataflow_graph(records)
        assert dynamic_slice(graph, 4).isdisjoint(dynamic_slice(graph, 3))

    def test_overlapping_slices_allowed(self):
        """Sec. II-B: a branch slice and computation slice may overlap."""
        prog = Program("p", [
            StaticInst(0, Opcode.MOVI, dest=1, imm=1),
            StaticInst(4, Opcode.ADDI, dest=2, src1=1, imm=1),  # shared
            StaticInst(8, Opcode.ADDI, dest=3, src1=2, imm=1),  # comp leaf
            StaticInst(12, Opcode.BEQZ, src1=2, target=0),      # branch leaf
        ])
        graph = build_dataflow_graph(FunctionalExecutor(prog).run(4))
        overlap = dynamic_slice(graph, 3) & dynamic_slice(graph, 2)
        assert overlap == {0, 1}

    def test_branch_slices_enumerates_all(self):
        records = FunctionalExecutor(_kernel()).run(10)  # two iterations
        graph = build_dataflow_graph(records)
        assert len(branch_slices(graph)) == 2

    def test_slice_depth(self):
        records = FunctionalExecutor(_kernel()).run(5)
        graph = build_dataflow_graph(records)
        assert slice_depth(graph, 4) == 2  # movi -> addi -> beqz

    def test_unknown_seq_raises(self):
        graph = build_dataflow_graph(FunctionalExecutor(_kernel()).run(5))
        with pytest.raises(KeyError):
            dynamic_slice(graph, 99)


class TestCharacterization:
    def test_workload_statistics_sane(self):
        stats = characterize_window(build_program(get_profile("sjeng")),
                                    instructions=1500, skip=500,
                                    mem_seed=107, window=128)
        assert stats.instructions == 1500
        assert stats.branches > 20
        assert 1.0 < stats.mean_slice_size < 60
        assert 0.0 < stats.branch_slice_coverage < 1.0
        assert stats.mean_slice_depth >= 1.0
        assert "branch slices" in str(stats)

    def test_branchless_window(self):
        prog = Program("p", [StaticInst(0, Opcode.MOVI, dest=1, imm=1)])
        stats = characterize_window(prog, instructions=50)
        assert stats.branches == 0
        assert stats.branch_slice_coverage == 0.0


class TestTrackerCrossValidation:
    def test_tracker_converges_to_exact_static_slice(self):
        """After enough decode passes, the hardware tracker's marks equal
        the exact dataflow slice (projected to static PCs) for a loop
        whose branch is unconfident."""
        prog = Program("loop", [
            StaticInst(0, Opcode.MOVI, dest=1, imm=0),           # slice
            StaticInst(4, Opcode.ADDI, dest=2, src1=1, imm=1),   # slice
            StaticInst(8, Opcode.ADDI, dest=3, src1=2, imm=1),   # slice
            StaticInst(12, Opcode.ADDI, dest=8, src1=9, imm=1),  # filler
            StaticInst(16, Opcode.BNEZ, src1=3, target=0),       # leaf
        ])
        # Exact ground truth from one iteration's dataflow.
        records = FunctionalExecutor(prog).run(5)
        graph = build_dataflow_graph(records)
        truth_pcs = {records[s].inst.pc for s in dynamic_slice(graph, 4)}

        tracker = SliceTracker()
        tracker.on_branch_resolved(16, correct=False)
        marks = {}
        for _ in range(6):  # enough passes for transitive closure
            marks = {
                inst.pc: tracker.on_decode(inst) for inst in prog
            }
        tracked_pcs = {pc for pc, marked in marks.items() if marked}
        assert tracked_pcs == truth_pcs
