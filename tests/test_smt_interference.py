"""SMT-interference mode: determinism, pollution, and PUBS divergence.

The co-runner (:mod:`repro.core.smt`) resolves bursts of synthetic branches
against the *shared* direction predictor, BTB and PUBS confidence/slice
tables every ``interleave`` commits.  These tests pin down:

* the knob validation and the injection arithmetic;
* bit-exact determinism, including live-vs-replay identity (injection is
  keyed to the commit stream, which both front ends reproduce exactly);
* real pollution: a trained predictor loses accuracy, and PUBS sees more
  unconfident branches, once the co-runner shares its tables;
* the headline divergence: under interference, PUBS's priority dispatch
  shields unconfident-branch slices, so the base machine slows down
  *more* than the PUBS machine on an H2P kernel;
* cache identity: ``smt`` is hashed into job keys (interference sweeps
  cache independently) but excluded from the batch signature (it only
  steers timed-phase behaviour, so members can share one trace walk).
"""

import dataclasses

import pytest

from repro.core import ProcessorConfig, SmtConfig, simulate
from repro.exec.jobs import SimJob, batch_signature, job_key
from repro.trace.store import TraceStore
from repro.workloads.stress.families import FAMILIES

BASE = ProcessorConfig.cortex_a72_like()
INSTRUCTIONS = 6000
SKIP = 2000


def _run(config, program, trace_source=None):
    return simulate(program, config, max_instructions=INSTRUCTIONS,
                    skip_instructions=SKIP, trace_source=trace_source)


@pytest.fixture(scope="module")
def h2p_learnable():
    """branch_h2p at bias 3: ~86% predictable, so pollution has teeth."""
    return FAMILIES["branch_h2p"].build(3)


@pytest.fixture(scope="module")
def h2p_mild():
    """bias 6: mostly-confident branches for the unconfident-rate probe."""
    return FAMILIES["branch_h2p"].build(6)


class TestConfig:
    def test_disabled_by_default(self):
        assert not ProcessorConfig().smt.enabled

    def test_with_smt_enables_and_overrides(self):
        cfg = BASE.with_smt(interleave=32, burst=2)
        assert cfg.smt.enabled
        assert cfg.smt.interleave == 32 and cfg.smt.burst == 2

    @pytest.mark.parametrize("field", ["interleave", "burst", "sites",
                                       "bias_bits"])
    def test_non_positive_knobs_rejected(self, field):
        with pytest.raises(ValueError, match="must be positive"):
            SmtConfig(enabled=True, **{field: 0})


class TestInjection:
    def test_disabled_run_injects_nothing(self, h2p_learnable):
        result = _run(BASE, h2p_learnable)
        assert result.stats.smt_injections == 0

    def test_injection_count_follows_interleave_and_burst(self,
                                                          h2p_learnable):
        result = _run(BASE.with_smt(interleave=64, burst=4), h2p_learnable)
        # One burst per `interleave` timed commits; skip commits nothing.
        assert result.stats.smt_injections == (INSTRUCTIONS // 64) * 4

    def test_deterministic(self, h2p_learnable):
        cfg = BASE.with_smt(interleave=16)
        a, b = _run(cfg, h2p_learnable), _run(cfg, h2p_learnable)
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)
        assert a.predictor_accuracy == b.predictor_accuracy

    def test_seed_changes_the_interference(self, h2p_learnable):
        a = _run(BASE.with_smt(interleave=8), h2p_learnable)
        b = _run(BASE.with_smt(interleave=8, seed=1234), h2p_learnable)
        # Same injection volume, different co-runner directions.
        assert a.stats.smt_injections == b.stats.smt_injections
        assert dataclasses.asdict(a.stats) != dataclasses.asdict(b.stats)


class TestPollution:
    def test_predictor_accuracy_drops(self, h2p_learnable):
        clean = _run(BASE, h2p_learnable)
        dirty = _run(BASE.with_smt(interleave=8), h2p_learnable)
        assert dirty.predictor_accuracy < clean.predictor_accuracy - 0.10

    def test_pubs_sees_more_unconfident_branches(self, h2p_mild):
        pubs = BASE.with_pubs()
        clean = _run(pubs, h2p_mild)
        dirty = _run(pubs.with_smt(interleave=8), h2p_mild)
        assert clean.tracker_stats.unconfident_branch_rate < 1.0
        assert dirty.tracker_stats.unconfident_branch_rate \
            > clean.tracker_stats.unconfident_branch_rate + 0.03


class TestPubsDivergence:
    """The acceptance assertion: PUBS vs base diverge under interference."""

    @pytest.fixture(scope="class")
    def quartet(self, h2p_learnable):
        pubs = BASE.with_pubs()
        return {
            "base": _run(BASE, h2p_learnable),
            "base_smt": _run(BASE.with_smt(interleave=8), h2p_learnable),
            "pubs": _run(pubs, h2p_learnable),
            "pubs_smt": _run(pubs.with_smt(interleave=8), h2p_learnable),
        }

    def test_interference_slows_both_machines(self, quartet):
        assert quartet["base_smt"].stats.cycles > quartet["base"].stats.cycles
        assert quartet["pubs_smt"].stats.cycles > quartet["pubs"].stats.cycles

    def test_base_degrades_more_than_pubs(self, quartet):
        # PUBS prioritizes the now-unconfident slices, so its slowdown
        # under interference is measurably smaller than the base
        # machine's (calibrated ~1.35x vs ~1.19x; require a 5% gap).
        base_slowdown = (quartet["base_smt"].stats.cycles
                         / quartet["base"].stats.cycles)
        pubs_slowdown = (quartet["pubs_smt"].stats.cycles
                         / quartet["pubs"].stats.cycles)
        assert base_slowdown > pubs_slowdown * 1.05

    def test_pubs_keeps_misspec_iq_wait_low_under_smt(self, quartet):
        # The component PUBS attacks stays attacked while polluted.
        assert quartet["pubs_smt"].stats.avg_missspec_iq_wait \
            < quartet["base_smt"].stats.avg_missspec_iq_wait / 2


class TestReplayIdentity:
    def test_live_and_replay_bit_identical_with_smt(self, tmp_path,
                                                    h2p_learnable):
        # Injection is keyed to commits, not cycles or wall clock, so the
        # replay front end reproduces the interference stream exactly.
        store = TraceStore(root=tmp_path, persistent=True)
        cfg = BASE.with_smt(interleave=16)
        live = _run(cfg, h2p_learnable)
        replay = _run(cfg.with_frontend("replay"), h2p_learnable,
                      trace_source=store)
        assert dataclasses.asdict(replay.stats) \
            == dataclasses.asdict(live.stats)
        assert replay.predictor_accuracy == live.predictor_accuracy


class TestCacheIdentity:
    def _job(self, cfg):
        return SimJob.make("sjeng", cfg, 3000, 2000)

    def test_smt_changes_the_job_key(self):
        replay = BASE.with_frontend("replay")
        assert job_key(self._job(replay)) \
            != job_key(self._job(replay.with_smt()))

    def test_smt_does_not_split_the_batch(self):
        # Interference only steers the timed phase -- warm state and the
        # trace walk are shared -- so smt variants batch together.
        replay = BASE.with_frontend("replay")
        sig = batch_signature(self._job(replay))
        assert sig is not None
        assert batch_signature(self._job(replay.with_smt())) == sig
        assert batch_signature(self._job(replay.with_smt(interleave=8))) \
            == sig
