"""Unit tests for def_tab / brslice_tab / conf_tab."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pubs import BrsliceTab, ConfTab, DefTab, Pointer, PointerCodec


class TestPointerCodec:
    def test_pointer_fields(self):
        codec = PointerCodec(num_sets=128, fold_width=8)
        ptr = codec.pointer(0x200)
        assert 0 <= ptr.index < 128
        assert 0 <= ptr.tag < 256
        assert codec.pointer_bits == 7 + 8

    def test_memoization_returns_same_object(self):
        codec = PointerCodec(64, 4)
        assert codec.pointer(0x40) is codec.pointer(0x40)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            PointerCodec(100, 8)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=50)
    def test_index_from_pc_low_bits(self, pc):
        codec = PointerCodec(256, 8)
        assert codec.pointer(pc).index == (pc >> 2) & 255


class TestDefTab:
    def test_records_and_retrieves_writer(self):
        tab = DefTab()
        ptr = Pointer(3, 7)
        tab.record_writer(5, ptr)
        assert tab.writer_of(5) == ptr

    def test_unwritten_register_is_none(self):
        assert DefTab().writer_of(0) is None

    def test_overwrite_keeps_latest(self):
        tab = DefTab()
        tab.record_writer(5, Pointer(1, 1))
        tab.record_writer(5, Pointer(2, 2))
        assert tab.writer_of(5) == Pointer(2, 2)

    def test_full_size_64_rows(self):
        tab = DefTab()
        assert tab.num_regs == 64
        tab.record_writer(63, Pointer(0, 0))
        assert tab.writer_of(63) == Pointer(0, 0)

    def test_clear(self):
        tab = DefTab()
        tab.record_writer(5, Pointer(1, 1))
        tab.clear()
        assert tab.writer_of(5) is None


class TestBrsliceTab:
    def test_link_then_lookup(self):
        tab = BrsliceTab(num_sets=64, assoc=2, fold_width=8)
        conf_ptr = Pointer(10, 3)
        slot = tab.codec.pointer(0x80)
        tab.link(slot, conf_ptr)
        assert tab.lookup(0x80) == conf_ptr

    def test_miss_returns_none(self):
        tab = BrsliceTab(64, 2, 8)
        assert tab.lookup(0x80) is None

    def test_relink_updates_pointer(self):
        tab = BrsliceTab(64, 2, 8)
        slot = tab.codec.pointer(0x80)
        tab.link(slot, Pointer(1, 1))
        tab.link(slot, Pointer(2, 2))
        assert tab.lookup(0x80) == Pointer(2, 2)

    def test_set_capacity_evicts_lru(self):
        tab = BrsliceTab(num_sets=1, assoc=2, fold_width=8)
        pcs = [0x0, 0x4, 0x8]  # all map to set 0
        for i, pc in enumerate(pcs[:2]):
            tab.link(tab.codec.pointer(pc), Pointer(i, i))
        tab.lookup(0x0)  # refresh LRU
        tab.link(tab.codec.pointer(0x8), Pointer(9, 9))
        assert tab.lookup(0x0) is not None
        assert tab.lookup(0x4) is None  # evicted

    def test_hashed_tag_aliasing_possible(self):
        """Two PCs with equal index and folded tag share an entry -- the
        cost-reduction hardware's accepted inaccuracy."""
        tab = BrsliceTab(num_sets=1, assoc=4, fold_width=1)
        # fold_width=1 makes aliases easy: find two PCs with equal 1-bit tag.
        tab.link(tab.codec.pointer(0x0), Pointer(5, 5))
        aliases = [pc for pc in range(4, 4096, 4)
                   if tab.codec.pointer(pc) == tab.codec.pointer(0x0)]
        assert aliases, "expected at least one alias with 1-bit tags"
        assert tab.lookup(aliases[0]) == Pointer(5, 5)

    def test_hit_statistics(self):
        tab = BrsliceTab(64, 2, 8)
        tab.lookup(0x80)
        tab.link(tab.codec.pointer(0x80), Pointer(0, 0))
        tab.lookup(0x80)
        assert tab.lookups == 2 and tab.hits == 1

    def test_clear(self):
        tab = BrsliceTab(64, 2, 8)
        tab.link(tab.codec.pointer(0x80), Pointer(0, 0))
        tab.clear()
        assert tab.lookup(0x80) is None


class TestConfTab:
    def test_unallocated_is_confident(self):
        tab = ConfTab(64, 2, 4, counter_bits=2)
        assert tab.is_confident_pc(0x40)
        assert tab.counter_for_pc(0x40) is None

    def test_allocation_policy(self):
        tab = ConfTab(64, 2, 4, counter_bits=2)
        tab.train(0x40, correct=True)
        assert tab.is_confident_pc(0x40)  # allocated at maximum
        tab.train(0x80, correct=False)
        assert not tab.is_confident_pc(0x80)  # allocated at zero

    def test_reset_on_misprediction(self):
        tab = ConfTab(64, 2, 4, counter_bits=2)
        tab.train(0x40, correct=True)
        tab.train(0x40, correct=False)
        assert not tab.is_confident_pc(0x40)
        for _ in range(3):
            tab.train(0x40, correct=True)
        assert tab.is_confident_pc(0x40)

    def test_pointer_dereference_matches_pc_lookup(self):
        tab = ConfTab(64, 2, 4, counter_bits=2)
        tab.train(0x40, correct=False)
        ptr = tab.pointer(0x40)
        assert tab.counter_for_pointer(ptr) is tab.counter_for_pc(0x40)
        assert not tab.is_confident_pointer(ptr)

    def test_unallocated_pointer_confident(self):
        tab = ConfTab(64, 2, 4, counter_bits=2)
        assert tab.is_confident_pointer(Pointer(5, 5))

    def test_set_eviction(self):
        tab = ConfTab(num_sets=1, assoc=2, fold_width=8, counter_bits=2)
        tab.train(0x0, correct=False)
        tab.train(0x4, correct=False)
        tab.train(0x8, correct=False)  # evicts LRU (0x0)
        assert tab.counter_for_pc(0x0) is None
        assert tab.counter_for_pc(0x8) is not None

    def test_counter_bits_respected(self):
        tab = ConfTab(64, 2, 4, counter_bits=3)
        tab.train(0x40, correct=False)
        counter = tab.counter_for_pc(0x40)
        assert counter.maximum == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfTab(64, 0)
        with pytest.raises(ValueError):
            ConfTab(64, 2, 4, counter_bits=0)
        with pytest.raises(ValueError):
            BrsliceTab(64, 0)
