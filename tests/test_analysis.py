"""Unit tests for speedup math, classification, and report rendering."""

import math

import pytest

from repro.analysis import (
    classify_programs,
    correlation,
    geometric_mean,
    gm_speedup,
    performance_ratio_with_clock,
    render_bar_chart,
    render_scatter,
    render_table,
    speedup,
    speedup_percent,
)


class TestGeometricMean:
    def test_identity(self):
        assert geometric_mean([2.0, 2.0]) == pytest.approx(2.0)

    def test_mixed(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_neutral(self):
        assert geometric_mean([]) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_matches_log_definition(self):
        vals = [1.1, 0.9, 1.3, 1.05]
        expected = math.exp(sum(map(math.log, vals)) / 4)
        assert geometric_mean(vals) == pytest.approx(expected)


class TestSpeedup:
    def test_ratio(self):
        assert speedup(1.2, 1.0) == pytest.approx(1.2)

    def test_percent(self):
        assert speedup_percent(1.078, 1.0) == pytest.approx(7.8)

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_gm_speedup_subset(self):
        base = {"a": 1.0, "b": 2.0, "c": 1.0}
        var = {"a": 1.1, "b": 2.2, "c": 5.0}
        assert gm_speedup(var, base, ["a", "b"]) == pytest.approx(1.1)


class TestClockAdjustedPerformance:
    def test_fig15b_formula(self):
        # Equal IPC, competitor 13% slower clock => 13% performance win.
        assert performance_ratio_with_clock(1.0, 1.0, 1.13) == pytest.approx(1.13)

    def test_combines_ipc_and_clock(self):
        # PUBS 2% behind in IPC but AGE pays 13% cycle time.
        ratio = performance_ratio_with_clock(0.98, 1.0, 1.13)
        assert ratio == pytest.approx(0.98 * 1.13)

    def test_validation(self):
        with pytest.raises(ValueError):
            performance_ratio_with_clock(1.0, 1.0, 0.0)


class TestClassification:
    def test_threshold_split(self):
        mpki = {"hard": 5.0, "easy": 1.0, "border": 3.0}
        dbp, ebp = classify_programs(mpki)
        assert dbp == ["border", "hard"]
        assert ebp == ["easy"]

    def test_custom_threshold(self):
        dbp, ebp = classify_programs({"a": 2.0}, threshold=1.5)
        assert dbp == ["a"] and ebp == []


class TestCorrelation:
    def test_perfect_positive(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_zero(self):
        assert correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            correlation([1], [1, 2])

    def test_short_series(self):
        assert correlation([1], [1]) == 0.0


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1.5], ["long-name", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_table_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_bar_chart(self):
        text = render_bar_chart(["sjeng", "mcf"], [19.2, 0.3], unit="%")
        assert "sjeng" in text and "19.20%" in text
        sjeng_bar = text.splitlines()[0].count("#")
        mcf_bar = text.splitlines()[1].count("#")
        assert sjeng_bar > mcf_bar

    def test_bar_chart_negative_values(self):
        text = render_bar_chart(["x"], [-5.0])
        assert "-" in text

    def test_bar_chart_empty(self):
        assert render_bar_chart([], []) == "(no data)"

    def test_bar_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_scatter_contains_markers(self):
        text = render_scatter([(1.0, 2.0, "R"), (3.0, 4.0, "B")], "x", "y")
        assert "R" in text and "B" in text
        assert "x" in text and "y" in text

    def test_scatter_empty(self):
        assert render_scatter([], "x", "y") == "(no data)"
