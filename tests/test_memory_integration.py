"""Additional memory-hierarchy integration cases."""

import pytest

from repro.memory import CacheConfig, MemoryConfig, MemoryHierarchy


def _h(prefetch=True, mem_latency=60):
    return MemoryHierarchy(MemoryConfig(
        l1i=CacheConfig("L1I", 1024, 2, 64, hit_latency=1),
        l1d=CacheConfig("L1D", 1024, 2, 64, hit_latency=2),
        l2=CacheConfig("L2", 32 * 1024, 4, 64, hit_latency=12),
        memory_latency=mem_latency,
        prefetch_enabled=prefetch,
    ))


class TestInstructionDataSharing:
    def test_l2_shared_between_ifetch_and_data(self):
        h = _h(prefetch=False)
        h.ifetch(0, 0x4000)          # misses to memory, fills L2
        lat = h.ifetch(1000, 0x4000)
        assert lat == 1              # L1I hit now
        # A *data* access to the same line hits the shared L2.
        assert h.load(2000, 0x4000) == 2 + 12

    def test_ifetch_miss_counted_separately(self):
        h = _h(prefetch=False)
        h.ifetch(0, 0x4000)
        h.load(0, 0x8000)
        assert h.stats.l1i_misses == 1
        assert h.stats.l1d_misses == 1
        assert h.stats.l2_misses == 2


class TestDescendingStreams:
    def test_prefetcher_covers_descending_stream(self):
        h = _h(prefetch=True, mem_latency=50)
        cycle = 0
        lats = []
        base = 0x100000 + 200 * 64
        for i in range(64):
            lat = h.load(cycle, base - i * 64)
            lats.append(lat)
            cycle += lat + 5
        assert min(lats[40:]) <= 14  # late accesses covered


class TestWarmMethods:
    def test_warm_data_installs_both_levels(self):
        h = _h(prefetch=False)
        h.warm_data(0x7000)
        assert h.l1d.probe(0x7000)
        assert h.l2.probe(0x7000)
        assert h.stats.l1d_accesses == 0  # warm-up leaves stats untouched

    def test_warm_ifetch_installs_both_levels(self):
        h = _h(prefetch=False)
        h.warm_ifetch(0x40)
        assert h.l1i.probe(0x40)
        assert h.l2.probe(0x40)


class TestEvictionBehaviour:
    def test_l1_capacity_eviction_falls_back_to_l2(self):
        h = _h(prefetch=False)
        # Touch 3x the L1D capacity; early lines must have been evicted
        # from L1 but remain in the larger L2.
        lines = [0x10000 + i * 64 for i in range(48)]
        cycle = 0
        for addr in lines:
            cycle += h.load(cycle, addr) + 1
        lat = h.load(cycle + 10_000, lines[0])
        assert lat == 2 + 12  # L1 miss, L2 hit

    def test_l2_capacity_eviction_goes_to_memory(self):
        h = _h(prefetch=False)
        lines = [0x10000 + i * 64 for i in range(1024)]  # 2x L2 capacity
        cycle = 0
        for addr in lines:
            cycle += h.load(cycle, addr) + 1
        lat = h.load(cycle + 100_000, lines[0])
        assert lat > 50  # back to memory


class TestStoreLoadInteraction:
    def test_store_then_load_same_line_hits(self):
        h = _h(prefetch=False)
        h.store(0, 0x9000)
        assert h.load(10_000, 0x9008) == 2

    def test_mpki_counts_demand_only(self):
        h = _h(prefetch=True, mem_latency=50)
        cycle = 0
        for i in range(32):
            cycle += h.load(cycle, 0x200000 + i * 64) + 3
        # Prefetch fills do not count as demand misses.
        assert h.stats.l2_misses < 32
        assert h.stats.prefetches_issued > 0
