"""Unit tests for the shifting and circular IQ organizations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.iq import CircularQueue, ShiftingQueue


class TestShiftingQueue:
    def test_age_order_is_position_order(self):
        q = ShiftingQueue(8)
        for uop in "abc":
            q.dispatch(uop)
        assert [u for _, u in q.occupied()] == ["a", "b", "c"]

    def test_compaction_on_release(self):
        q = ShiftingQueue(8)
        for uop in "abcd":
            q.dispatch(uop)
        q.release(1)  # remove "b"
        assert [u for _, u in q.occupied()] == ["a", "c", "d"]
        # Positions are contiguous after compaction.
        assert [slot for slot, _ in q.occupied()] == [0, 1, 2]

    def test_release_by_identity(self):
        q = ShiftingQueue(4)
        q.dispatch("a")
        q.dispatch("b")
        q.release_uop("a")
        assert [u for _, u in q.occupied()] == ["b"]

    def test_capacity(self):
        q = ShiftingQueue(2)
        assert q.dispatch("a") == 0
        assert q.dispatch("b") == 1
        assert q.dispatch("c") is None
        assert q.is_full()

    def test_flush(self):
        q = ShiftingQueue(8)
        for v in (1, 5, 9, 2):
            q.dispatch(v)
        q.flush(keep=lambda u: u < 6)
        assert [u for _, u in q.occupied()] == [1, 5, 2]

    def test_release_out_of_range(self):
        q = ShiftingQueue(4)
        with pytest.raises(ValueError):
            q.release(0)

    def test_oldest_always_at_slot_zero(self):
        """The defining property: position priority == age priority."""
        q = ShiftingQueue(8)
        for i in range(6):
            q.dispatch(i)
        q.release(0)
        q.release(2)
        remaining = [u for _, u in q.occupied()]
        assert remaining == sorted(remaining)
        assert q.at(0) == min(remaining)


class TestCircularQueue:
    def test_allocates_in_order(self):
        q = CircularQueue(4)
        assert [q.dispatch(v) for v in "abc"] == [0, 1, 2]

    def test_holes_block_capacity(self):
        """An issued mid-queue entry stays unusable until older entries
        drain -- the capacity inefficiency of Sec. III-B1."""
        q = CircularQueue(4)
        for v in "abcd":
            q.dispatch(v)
        q.release(2)  # "c" issues; hole in the middle
        assert q.occupancy == 3
        assert q.reserved == 4  # the hole still counts
        assert q.dispatch("e") is None  # full despite the hole

    def test_head_reclaims_through_holes(self):
        q = CircularQueue(4)
        for v in "abcd":
            q.dispatch(v)
        q.release(1)          # hole at 1
        q.release(0)          # head drains: reclaims 0 AND the hole at 1
        assert q.reserved == 2
        assert q.dispatch("e") == 0  # wrapped allocation reuses slot 0

    def test_wraparound_reverses_position_priority(self):
        """After wrap, the youngest instruction occupies the lowest
        physical slot -- the priority reversal the paper describes."""
        q = CircularQueue(4)
        for v in ("old0", "old1", "old2", "old3"):
            q.dispatch(v)
        q.release(0)
        q.release(1)
        q.dispatch("young")  # allocates physical slot 0
        order = [u for _, u in q.occupied()]
        assert order[0] == "young"  # youngest first in physical order

    def test_flush_reclaims(self):
        q = CircularQueue(4)
        for v in (1, 9, 2, 8):
            q.dispatch(v)
        q.flush(keep=lambda u: u < 5)
        assert q.occupancy == 2

    def test_release_empty_slot(self):
        q = CircularQueue(4)
        with pytest.raises(ValueError):
            q.release(0)


@given(st.lists(st.sampled_from(["d", "r"]), max_size=150))
@settings(max_examples=40, deadline=None)
def test_property_shifting_queue_stays_age_sorted(ops):
    """Under any dispatch/release interleaving the shifting queue's
    physical order equals dispatch (age) order."""
    q = ShiftingQueue(10)
    counter = 0
    import random
    rng = random.Random(7)
    for op in ops:
        if op == "d" and not q.is_full():
            q.dispatch(counter)
            counter += 1
        elif op == "r" and q.occupancy:
            slot = rng.randrange(q.occupancy)
            q.release(slot)
        ages = [u for _, u in q.occupied()]
        assert ages == sorted(ages)


@given(st.lists(st.sampled_from(["d", "r"]), max_size=150))
@settings(max_examples=40, deadline=None)
def test_property_circular_queue_invariants(ops):
    """reserved >= occupancy, both bounded by size, and dispatch succeeds
    iff reserved < size."""
    q = CircularQueue(8)
    counter = 0
    import random
    rng = random.Random(13)
    for op in ops:
        if op == "d":
            was_full = q.is_full()
            slot = q.dispatch(counter)
            assert (slot is None) == was_full
            counter += 1
        elif op == "r":
            live = [s for s, _ in q.occupied()]
            if live:
                q.release(rng.choice(live))
        assert 0 <= q.occupancy <= q.reserved <= 8
