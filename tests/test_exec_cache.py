"""Persistent result cache: keys, round trips, invalidation."""

import pickle

import pytest

from repro import ProcessorConfig
from repro.exec import (
    ResultCache, SimJob, cache_enabled_by_env, config_fingerprint,
    default_cache_dir, execute_job, fingerprint, job_key,
)

INSTRUCTIONS = 300
SKIP = 200


def _job(config=None, workload="sjeng", instructions=INSTRUCTIONS):
    return SimJob.make(workload, config, instructions, SKIP)


class TestFingerprints:
    def test_equal_configs_built_independently_hash_equal(self):
        a = ProcessorConfig.cortex_a72_like().with_pubs()
        b = ProcessorConfig.cortex_a72_like().with_pubs()
        assert a is not b
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_any_field_change_changes_the_key(self):
        base = ProcessorConfig.cortex_a72_like()
        variants = [
            base.with_pubs(),
            base.with_age_matrix(),
            base.with_overrides(iq_size=base.iq_size + 1),
            base.with_overrides(distributed_iq=True),
        ]
        keys = {job_key(_job(cfg)) for cfg in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_budget_and_workload_feed_the_key(self):
        assert job_key(_job()) != job_key(_job(instructions=INSTRUCTIONS + 1))
        assert job_key(_job()) != job_key(_job(workload="mcf"))

    def test_key_is_stable_across_calls(self):
        assert job_key(_job()) == job_key(_job())

    def test_non_canonicalizable_object_is_an_error(self):
        with pytest.raises(TypeError):
            fingerprint(object())


class TestResultCache:
    def test_round_trip_preserves_result_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        result = execute_job(job)
        cache.put(job_key(job), result)
        assert cache.get(job_key(job)) == result
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_absent_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.stats.misses == 1
        assert cache.stats.invalidations == 0

    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job_key(job), execute_job(job))
        changed = _job(ProcessorConfig.cortex_a72_like().with_pubs())
        assert cache.get(job_key(changed)) is None

    def test_schema_bump_invalidates_stored_entries(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        job = _job()
        key = job_key(job)
        cache.put(key, execute_job(job))
        # The key itself moves with the schema version...
        monkeypatch.setattr("repro.exec.jobs.CACHE_SCHEMA_VERSION", 999)
        assert job_key(job) != key
        # ...and even an entry addressed by its old key is rejected.
        monkeypatch.setattr("repro.exec.cache.CACHE_SCHEMA_VERSION", 999)
        assert cache.get(key) is None
        assert cache.stats.invalidations == 1
        assert not (tmp_path / (key + ".pkl")).exists()

    def test_corrupt_entry_is_invalidated_and_deleted(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / ("f" * 64 + ".pkl")
        path.write_bytes(b"not a pickle")
        assert cache.get("f" * 64) is None
        assert cache.stats.invalidations == 1
        assert not path.exists()

    def test_wrong_payload_shape_is_invalidated(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / ("e" * 64 + ".pkl")
        path.write_bytes(pickle.dumps(["unexpected"]))
        assert cache.get("e" * 64) is None
        assert cache.stats.invalidations == 1

    def test_transient_oserror_is_a_miss_not_an_invalidation(self, tmp_path):
        """An unreadable path must not count as (or trigger) invalidation.

        Regression: transient I/O failures used to be lumped in with
        corruption, inflating the invalidation counter and deleting
        entries that were perfectly healthy.  A directory squatting on
        the entry path raises ``IsADirectoryError`` (an ``OSError``)
        from ``open`` -- the canonical stand-in for EACCES/EIO, which
        cannot be provoked via permission bits when running as root.
        """
        cache = ResultCache(tmp_path)
        job = _job()
        key = job_key(job)
        cache.put(key, execute_job(job))
        entry = tmp_path / (key + ".pkl")
        aside = tmp_path / "healthy-entry"
        entry.rename(aside)
        entry.mkdir()  # open() now raises IsADirectoryError
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        assert cache.stats.invalidations == 0
        assert entry.is_dir()  # never unlinked on a transient failure
        # Once the path is readable again, the untouched entry still hits.
        entry.rmdir()
        aside.rename(entry)
        assert cache.get(key) is not None
        assert cache.stats.invalidations == 0

    def test_clear_and_maintenance_views(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job_key(job), execute_job(job))
        assert len(cache) == 1
        assert cache.size_bytes() > 0
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_unwritable_directory_degrades_to_noop(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        cache = ResultCache(blocker / "sub")  # mkdir fails: parent is a file
        cache.put("a" * 64, 123)  # must not raise
        assert cache.get("a" * 64) is None


class TestEnvironmentPolicy:
    def test_cache_dir_env_is_honoured(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        assert ResultCache().directory == tmp_path / "alt"

    def test_default_cache_dir_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro"

    def test_repro_cache_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not cache_enabled_by_env()
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert cache_enabled_by_env()
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled_by_env()
