"""Unit tests for the hardware cost model (Table III)."""

import pytest

from repro.pubs import PubsConfig, pubs_hardware_cost, unhashed_cost


class TestDefaultCost:
    def test_total_near_paper_4kb(self):
        cost = pubs_hardware_cost()
        assert 3.5 < cost.total_kib < 4.2

    def test_breakdown_structure(self):
        cost = pubs_hardware_cost()
        rows = cost.rows()
        assert [name for name, _ in rows] == [
            "def_tab", "brslice_tab", "conf_tab", "total",
        ]
        assert rows[-1][1] == pytest.approx(
            rows[0][1] + rows[1][1] + rows[2][1]
        )

    def test_default_field_values(self):
        # def_tab: 64 x (8 index + 8 hashed tag) = 1024 bits.
        cost = pubs_hardware_cost()
        assert cost.def_tab_bits == 64 * (8 + 8)
        # brslice: 256 sets x 4 ways x (8 tag + (8 idx + 4 tag) pointer).
        assert cost.brslice_tab_bits == 256 * 4 * (8 + 12)
        # conf: 256 sets x 4 ways x (4 tag + 6 counter).
        assert cost.conf_tab_bits == 256 * 4 * (4 + 6)

    def test_brslice_is_largest_table(self):
        cost = pubs_hardware_cost()
        assert cost.brslice_tab_bits > cost.conf_tab_bits > cost.def_tab_bits


class TestHashingSavings:
    def test_hashing_shrinks_cost_dramatically(self):
        """Sec. IV's point: full 54/55-bit tags dominate; folding to 8/4
        bits cuts the total by >4x."""
        hashed = pubs_hardware_cost()
        full = unhashed_cost()
        assert full.total_bits > 4 * hashed.total_bits

    def test_unhashed_tag_widths(self):
        full = unhashed_cost()
        # brslice full tag: 62 - 8 = 54 bits, pointer 62 bits.
        assert full.brslice_tab_bits == 256 * 4 * (54 + 62)


class TestScaling:
    def test_counter_bits_scale_conf_tab_only(self):
        small = pubs_hardware_cost(PubsConfig(conf_counter_bits=2))
        large = pubs_hardware_cost(PubsConfig(conf_counter_bits=8))
        assert small.brslice_tab_bits == large.brslice_tab_bits
        assert small.def_tab_bits == large.def_tab_bits
        assert large.conf_tab_bits - small.conf_tab_bits == 256 * 4 * 6

    def test_blind_model_would_drop_conf_tab(self):
        """Fig. 11's 'blind' model eliminates conf_tab: its saving is the
        conf_tab_kib component."""
        cost = pubs_hardware_cost()
        assert cost.conf_tab_kib > 0.5  # a meaningful saving to discuss

    def test_sets_scale_table_size(self):
        base = pubs_hardware_cost(PubsConfig())
        doubled = pubs_hardware_cost(PubsConfig(brslice_sets=512))
        assert doubled.brslice_tab_bits > base.brslice_tab_bits
