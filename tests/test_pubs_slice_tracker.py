"""Unit tests for the decode-stage slice tracker (the heart of PUBS)."""

import pytest

from repro.isa import Opcode, StaticInst
from repro.pubs import PubsConfig, SliceTracker


def _add(pc, dest, src1, src2):
    return StaticInst(pc, Opcode.ADD, dest=dest, src1=src1, src2=src2)


def _addi(pc, dest, src):
    return StaticInst(pc, Opcode.ADDI, dest=dest, src1=src, imm=1)


def _beqz(pc, src, target=0):
    return StaticInst(pc, Opcode.BEQZ, src1=src, target=target)


def _decode_loop(tracker, insts, iterations):
    """Decode the same instruction sequence repeatedly; returns the marks of
    the final iteration, one bool per instruction."""
    marks = []
    for _ in range(iterations):
        marks = [tracker.on_decode(inst) for inst in insts]
    return marks


class TestSliceDiscovery:
    def test_direct_producer_linked_after_one_iteration(self):
        """Iteration 1 links the branch's direct producer; iteration 2 can
        then classify it."""
        tracker = SliceTracker()
        insts = [_addi(0, 1, 2), _beqz(4, 1)]
        tracker.on_branch_resolved(4, correct=False)  # make it unconfident
        marks = _decode_loop(tracker, insts, 2)
        assert marks == [True, True]

    def test_transitive_closure_builds_over_iterations(self):
        """A depth-3 chain needs three decode passes to be fully linked:
        producers propagate one level per pass (Sec. III-A2 steps 2-3)."""
        tracker = SliceTracker()
        chain = [
            _addi(0, 1, 5),    # level 3 (linked on pass 3)
            _addi(4, 2, 1),    # level 2 (linked on pass 2)
            _addi(8, 3, 2),    # level 1 (linked on pass 1)
            _beqz(12, 3),
        ]
        tracker.on_branch_resolved(12, correct=False)
        marks1 = [tracker.on_decode(i) for i in chain]
        assert marks1 == [False, False, False, True]
        marks2 = [tracker.on_decode(i) for i in chain]
        assert marks2 == [False, False, True, True]
        marks4 = _decode_loop(tracker, chain, 2)
        assert marks4 == [True, True, True, True]

    def test_non_slice_instruction_never_marked(self):
        tracker = SliceTracker()
        insts = [
            _addi(0, 1, 2),    # feeds the branch
            _addi(4, 9, 10),   # independent filler
            _beqz(8, 1),
        ]
        tracker.on_branch_resolved(8, correct=False)
        marks = _decode_loop(tracker, insts, 4)
        assert marks == [True, False, True]

    def test_two_source_branch_links_both(self):
        tracker = SliceTracker()
        insts = [
            _addi(0, 1, 5),
            _addi(4, 2, 6),
            StaticInst(8, Opcode.BEQ, src1=1, src2=2, target=0),
        ]
        tracker.on_branch_resolved(8, correct=False)
        marks = _decode_loop(tracker, insts, 3)
        assert marks == [True, True, True]

    def test_jump_is_not_tracked(self):
        tracker = SliceTracker()
        insts = [
            _addi(0, 1, 2),
            StaticInst(4, Opcode.JUMP, target=0),
        ]
        marks = _decode_loop(tracker, insts, 3)
        assert marks == [False, False]


class TestConfidenceGating:
    def test_confident_branch_slice_not_marked(self):
        tracker = SliceTracker()
        insts = [_addi(0, 1, 2), _beqz(4, 1)]
        tracker.on_branch_resolved(4, correct=True)  # confident allocation
        marks = _decode_loop(tracker, insts, 3)
        assert marks == [False, False]

    def test_unallocated_branch_not_marked(self):
        tracker = SliceTracker()
        insts = [_addi(0, 1, 2), _beqz(4, 1)]
        marks = _decode_loop(tracker, insts, 3)
        assert marks == [False, False]

    def test_confidence_recovery_unmarks_slice(self):
        cfg = PubsConfig(conf_counter_bits=1)  # saturates after one correct
        tracker = SliceTracker(cfg)
        insts = [_addi(0, 1, 2), _beqz(4, 1)]
        tracker.on_branch_resolved(4, correct=False)
        assert _decode_loop(tracker, insts, 2) == [True, True]
        tracker.on_branch_resolved(4, correct=True)
        assert _decode_loop(tracker, insts, 1) == [False, False]

    def test_blind_mode_marks_everything_linked(self):
        tracker = SliceTracker(PubsConfig(blind=True))
        insts = [_addi(0, 1, 2), _addi(4, 9, 10), _beqz(8, 1)]
        marks = _decode_loop(tracker, insts, 3)
        assert marks == [True, False, True]  # slice + branch, not filler

    def test_blind_mode_skips_training(self):
        tracker = SliceTracker(PubsConfig(blind=True))
        tracker.on_branch_resolved(4, correct=False)
        assert tracker.stats.trainings == 0


class TestDataflowCorrectness:
    def test_register_overwrite_breaks_stale_link(self):
        """If another instruction overwrites the source register, the new
        writer (not the old one) is in the slice."""
        tracker = SliceTracker()
        insts = [
            _addi(0, 1, 5),   # old writer of r1
            _addi(4, 1, 6),   # new writer of r1 (this is the producer)
            _beqz(8, 1),
        ]
        tracker.on_branch_resolved(8, correct=False)
        marks = _decode_loop(tracker, insts, 3)
        assert marks[1] is True
        # The stale writer got linked on iteration boundaries only if the
        # def_tab still pointed at it when the branch decoded -- it did not.
        assert marks[0] is False

    def test_self_loop_register(self):
        """r1 = r1 + 1 feeding a branch: the accumulator is its own producer
        and stays in the slice."""
        tracker = SliceTracker()
        insts = [_addi(0, 1, 1), _beqz(4, 1)]
        tracker.on_branch_resolved(4, correct=False)
        marks = _decode_loop(tracker, insts, 3)
        assert marks == [True, True]

    def test_stats_accumulate(self):
        tracker = SliceTracker()
        insts = [_addi(0, 1, 2), _beqz(4, 1)]
        tracker.on_branch_resolved(4, correct=False)
        _decode_loop(tracker, insts, 5)
        s = tracker.stats
        assert s.decoded == 10
        assert s.branch_decodes == 5
        assert s.unconfident_branch_decodes == 5
        assert s.unconfident_branch_rate == 1.0
        assert s.slice_hits >= 4

    def test_reset_tables_clears_state_keeps_stats(self):
        tracker = SliceTracker()
        insts = [_addi(0, 1, 2), _beqz(4, 1)]
        tracker.on_branch_resolved(4, correct=False)
        _decode_loop(tracker, insts, 2)
        decoded_before = tracker.stats.decoded
        tracker.reset_tables()
        assert tracker.stats.decoded == decoded_before
        # After reset, the producer is no longer classified as slice.
        assert tracker.on_decode(insts[0]) is False
