"""Unit tests for the distributed IQ (Sec. III-C2)."""

from dataclasses import dataclass

import pytest

from repro.iq import DistributedIssueQueue, DistributedSelectLogic, FuPool
from repro.isa import FuClass


@dataclass
class FakeUop:
    seq: int
    fu: FuClass = FuClass.IALU


class TestPartitioning:
    def test_total_size_conserved(self):
        diq = DistributedIssueQueue(64, FuPool())
        assert diq.size == 64
        assert all(q.size >= 4 for q in diq.queues.values())

    def test_sizes_proportional_to_units(self):
        diq = DistributedIssueQueue(64, FuPool(ialu=2, imult=1, ldst=2, fpu=2))
        assert diq.queues[FuClass.IMULT].size < diq.queues[FuClass.IALU].size

    def test_priority_entries_distributed(self):
        diq = DistributedIssueQueue(64, FuPool(), priority_entries=6)
        assert all(q.priority_entries >= 1 for q in diq.queues.values())

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            DistributedIssueQueue(8, FuPool())


class TestDispatchRouting:
    def test_routes_by_fu_class(self):
        diq = DistributedIssueQueue(64, FuPool())
        handle = diq.dispatch(FakeUop(0, FuClass.LDST), priority=False)
        assert handle[0] == FuClass.LDST.value
        assert diq.queues[FuClass.LDST].occupancy == 1
        assert diq.queues[FuClass.IALU].occupancy == 0

    def test_per_queue_structural_stall(self):
        """A full per-class queue rejects dispatch even when other queues
        are empty -- the capacity-efficiency disadvantage."""
        diq = DistributedIssueQueue(16, FuPool())  # 4 entries per class
        mult_size = diq.queues[FuClass.IMULT].size
        for i in range(mult_size):
            assert diq.dispatch(FakeUop(i, FuClass.IMULT), False) is not None
        assert diq.dispatch(FakeUop(99, FuClass.IMULT), False) is None
        assert not diq.is_full()
        assert diq.dispatch(FakeUop(100, FuClass.IALU), False) is not None

    def test_release_by_handle(self):
        diq = DistributedIssueQueue(64, FuPool())
        handle = diq.dispatch(FakeUop(0, FuClass.FPU), False)
        diq.release(handle)
        assert diq.occupancy == 0

    def test_priority_partition_per_queue(self):
        diq = DistributedIssueQueue(64, FuPool(), priority_entries=8)
        uop = FakeUop(0, FuClass.IALU)
        handle = diq.dispatch(uop, priority=True)
        fu_value, slot = handle
        assert slot < diq.queues[FuClass.IALU].priority_entries
        assert diq.priority_dispatches == 1

    def test_flush(self):
        diq = DistributedIssueQueue(64, FuPool())
        diq.dispatch(FakeUop(1, FuClass.IALU), False)
        diq.dispatch(FakeUop(9, FuClass.FPU), False)
        diq.flush(keep=lambda u: u.seq < 5)
        assert diq.occupancy == 1

    def test_occupied_yields_handles(self):
        diq = DistributedIssueQueue(64, FuPool())
        diq.dispatch(FakeUop(0, FuClass.IALU), False)
        diq.dispatch(FakeUop(1, FuClass.FPU), False)
        entries = list(diq.occupied())
        assert len(entries) == 2
        for handle, uop in entries:
            assert diq.at(handle) is uop


class TestDistributedSelect:
    def test_per_class_unit_bound(self):
        sel = DistributedSelectLogic(issue_width=4, fu_pool=FuPool(imult=1))
        reqs = [((FuClass.IMULT.value, s), FakeUop(s, FuClass.IMULT))
                for s in range(3)]
        granted = sel.select(reqs)
        assert len(granted) == 1
        assert granted[0][0] == (FuClass.IMULT.value, 0)

    def test_global_width_bound(self):
        sel = DistributedSelectLogic(issue_width=2,
                                     fu_pool=FuPool(ialu=4, fpu=4))
        reqs = (
            [((FuClass.IALU.value, s), FakeUop(s, FuClass.IALU)) for s in range(3)]
            + [((FuClass.FPU.value, s), FakeUop(s, FuClass.FPU)) for s in range(3)]
        )
        assert len(sel.select(reqs)) == 2

    def test_position_priority_within_queue(self):
        sel = DistributedSelectLogic(issue_width=4, fu_pool=FuPool(ialu=2))
        reqs = [((FuClass.IALU.value, s), FakeUop(s, FuClass.IALU))
                for s in (5, 1, 3)]
        granted = sel.select(reqs)
        assert [h[1] for h, _ in granted] == [1, 3]

    def test_empty(self):
        sel = DistributedSelectLogic(4, FuPool())
        assert sel.select([]) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedSelectLogic(0, FuPool())
