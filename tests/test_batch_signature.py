"""Property test: the batch signature partitions jobs exactly right.

Two replay jobs may share one batched trace walk iff they agree on the
warm-class state -- workload, budget, replay window, memory configuration
and the warmup-trained front-end slice.  Everything else is a
timing-steering knob each member keeps privately.  The property, over
randomly drawn configurations:

* any combination of *steering-only* differences (PUBS dispatch policy,
  window sizes, widths, IQ organization, verification, SMT interference)
  leaves the signature unchanged -- those jobs batch together;
* flipping any single *warm-class* field (profile, budget, region, memory
  geometry, predictor geometry, PUBS table geometry / enablement) splits
  the signature -- those jobs must not share a walk.
"""

import dataclasses

from hypothesis import given
from hypothesis import strategies as st

from repro.core import SmtConfig
from repro.core.config import ProcessorConfig
from repro.exec.jobs import SimJob, batch_signature
from repro.pubs import PubsConfig
from repro.workloads import get_profile

BASE = ProcessorConfig.cortex_a72_like().with_frontend("replay")
PROFILE = get_profile("sjeng")
INSTRUCTIONS, SKIP = 3000, 2000


def _job(config=BASE, profile=PROFILE, instructions=INSTRUCTIONS,
         skip=SKIP):
    return SimJob(profile, config, instructions, skip)


#: Timing-steering machine knobs: anything here may differ between batch
#: members.  PUBS stays enabled on both sides (its enablement is
#: warm-class); only its dispatch-policy fields vary.
steering_knobs = st.fixed_dictionaries({}, optional={
    "rob_size": st.sampled_from([96, 128, 192]),
    "iq_size": st.sampled_from([32, 64, 96]),
    "lsq_size": st.sampled_from([32, 64]),
    "fetch_width": st.sampled_from([3, 4, 5]),
    "recovery_penalty": st.sampled_from([5, 10, 15]),
    "use_age_matrix": st.booleans(),
    "verify_level": st.sampled_from(["off", "commit-only", "full"]),
    "priority_entries": st.sampled_from([4, 6, 8]),
    "stall_policy": st.booleans(),
    "mode_switch_enabled": st.booleans(),
    "smt": st.one_of(
        st.none(),
        st.sampled_from([8, 32, 64]).map(
            lambda interleave: SmtConfig(enabled=True,
                                         interleave=interleave))),
})


def _steered(knobs) -> ProcessorConfig:
    pubs_fields = {k: knobs.pop(k) for k in
                   ("priority_entries", "stall_policy",
                    "mode_switch_enabled") if k in knobs}
    smt = knobs.pop("smt", None)
    cfg = BASE.with_pubs(PubsConfig(**pubs_fields))
    if knobs:
        cfg = cfg.with_overrides(**knobs)
    if smt is not None:
        cfg = cfg.with_smt(smt)
    return cfg


@given(steering_knobs, steering_knobs)
def test_steering_only_differences_share_a_signature(knobs_a, knobs_b):
    a = _job(_steered(dict(knobs_a)))
    b = _job(_steered(dict(knobs_b)))
    assert batch_signature(a) == batch_signature(b)


#: (left, right) job pairs differing in exactly one warm-class field
#: family; every pair must land in different batch-equivalence classes.
_WARM_SPLITS = {
    "workload": (lambda: _job(),
                 lambda: _job(profile=get_profile("mcf"))),
    "instructions": (lambda: _job(),
                     lambda: _job(instructions=INSTRUCTIONS + 500)),
    "skip": (lambda: _job(), lambda: _job(skip=SKIP + 500)),
    "region": (lambda: _job(),
               lambda: _job(BASE.with_region(start=1500, warmup=1000))),
    "memory_latency": (lambda: _job(), lambda: _job(BASE.with_overrides(
        memory=dataclasses.replace(BASE.memory, memory_latency=310)))),
    "predictor": (lambda: _job(), lambda: _job(BASE.with_overrides(
        predictor=dataclasses.replace(BASE.predictor,
                                      history_length=30)))),
    "pubs_enabled": (lambda: _job(), lambda: _job(BASE.with_pubs())),
    "pubs_geometry": (lambda: _job(BASE.with_pubs()),
                      lambda: _job(BASE.with_pubs(
                          PubsConfig(conf_sets=128)))),
    "pubs_blind": (lambda: _job(BASE.with_pubs()),
                   lambda: _job(BASE.with_pubs(PubsConfig(blind=True)))),
}


@given(st.sampled_from(sorted(_WARM_SPLITS)))
def test_any_warm_class_difference_splits_the_signature(split):
    left, right = _WARM_SPLITS[split]
    assert batch_signature(left()) != batch_signature(right())


def test_live_jobs_have_no_signature():
    live = _job(ProcessorConfig.cortex_a72_like())
    assert batch_signature(live) is None


def test_signature_is_stable_across_equal_builds():
    a = _job(ProcessorConfig.cortex_a72_like().with_frontend("replay"))
    b = _job(ProcessorConfig.cortex_a72_like().with_frontend("replay"))
    assert batch_signature(a) == batch_signature(b)
