"""Unit tests for the composed memory hierarchy (latencies, MSHRs, bus)."""

import pytest

from repro.memory import CacheConfig, MemoryConfig, MemoryHierarchy


def _small_hierarchy(prefetch=False, mem_latency=300):
    return MemoryHierarchy(MemoryConfig(
        l1i=CacheConfig("L1I", 1024, 2, 64, hit_latency=1),
        l1d=CacheConfig("L1D", 1024, 2, 64, hit_latency=2),
        l2=CacheConfig("L2", 16 * 1024, 4, 64, hit_latency=12),
        memory_latency=mem_latency,
        memory_bytes_per_cycle=8,
        prefetch_enabled=prefetch,
    ))


class TestLatencies:
    def test_l1_hit_latency(self):
        h = _small_hierarchy()
        h.warm_data(0x1000)
        assert h.load(cycle=100, addr=0x1000) == 2

    def test_l2_hit_latency(self):
        h = _small_hierarchy()
        h.l2.install(0x1000)
        lat = h.load(cycle=100, addr=0x1000)
        assert lat == 2 + 12  # L1 probe + L2 hit

    def test_memory_latency(self):
        h = _small_hierarchy()
        lat = h.load(cycle=100, addr=0x1000)
        # L1 (2) + L2 (12) + memory (300) + line transfer (8)
        assert lat == 2 + 12 + 300 + 8

    def test_fill_installs_after_latency(self):
        h = _small_hierarchy()
        lat = h.load(cycle=0, addr=0x1000)
        assert h.load(cycle=lat + 1, addr=0x1000) == 2  # now an L1 hit

    def test_ifetch_uses_l1i(self):
        h = _small_hierarchy()
        h.warm_ifetch(0x40)
        assert h.ifetch(cycle=0, addr=0x40) == 1
        assert h.stats.l1i_accesses == 1

    def test_store_write_allocates(self):
        h = _small_hierarchy()
        h.store(cycle=0, addr=0x1000)
        assert h.stats.l1d_misses == 1
        assert h.load(cycle=1000, addr=0x1000) == 2


class TestMshrMerging:
    def test_second_access_merges_into_flight(self):
        h = _small_hierarchy()
        lat1 = h.load(cycle=0, addr=0x1000)
        lat2 = h.load(cycle=10, addr=0x1008)  # same line, 10 cycles later
        assert lat2 == lat1 - 10
        # Only one LLC miss despite two L1 misses.
        assert h.stats.l2_misses == 1
        assert h.stats.l1d_misses == 2

    def test_merged_latency_never_below_hit(self):
        h = _small_hierarchy()
        lat1 = h.load(cycle=0, addr=0x1000)
        assert h.load(cycle=lat1 - 1, addr=0x1008) >= 2

    def test_different_lines_fill_independently(self):
        h = _small_hierarchy()
        h.load(cycle=0, addr=0x1000)
        h.load(cycle=0, addr=0x2000)
        assert h.stats.l2_misses == 2


class TestBusSerialization:
    def test_back_to_back_fills_queue_on_the_bus(self):
        h = _small_hierarchy()
        lat1 = h.load(cycle=0, addr=0x1000)
        lat2 = h.load(cycle=0, addr=0x2000)
        lat3 = h.load(cycle=0, addr=0x3000)
        # Each 64B line occupies the 8B/cycle bus for 8 cycles.
        assert lat2 == lat1 + 8
        assert lat3 == lat1 + 16

    def test_bus_frees_over_time(self):
        h = _small_hierarchy()
        lat1 = h.load(cycle=0, addr=0x1000)
        lat2 = h.load(cycle=1000, addr=0x2000)
        assert lat2 == lat1  # no queueing long after


class TestPrefetch:
    def test_stream_gets_covered(self):
        h = _small_hierarchy(prefetch=True, mem_latency=50)
        cycle = 0
        lats = []
        for i in range(64):
            lat = h.load(cycle, 0x100000 + i * 64)
            lats.append(lat)
            cycle += lat + 5
        # Early accesses miss to memory; late ones hit L2/prefetch.
        assert max(lats[:3]) > 50
        assert min(lats[40:]) <= 14
        assert h.stats.prefetches_issued > 0

    def test_prefetch_disabled_never_issues(self):
        h = _small_hierarchy(prefetch=False)
        cycle = 0
        for i in range(32):
            cycle += h.load(cycle, i * 64)
        assert h.stats.prefetches_issued == 0

    def test_late_prefetch_counts_as_prefetch_hit_not_miss(self):
        h = _small_hierarchy(prefetch=True, mem_latency=400)
        cycle = 0
        for i in range(8):
            lat = h.load(cycle, 0x200000 + i * 64)
            cycle += 1  # hammer the stream so demand catches prefetches
        assert h.stats.prefetch_hits >= 0  # counted separately
        # Demand misses + prefetch hits together cover the accesses that
        # reached the L2 without a hit.
        assert h.stats.l2_misses + h.stats.prefetch_hits >= 1


class TestMetrics:
    def test_llc_mpki(self):
        h = _small_hierarchy()
        h.load(0, 0x1000)
        h.load(0, 0x2000)
        assert h.llc_mpki(1000) == pytest.approx(2.0)
        assert h.llc_mpki(0) == 0.0

    def test_default_config_matches_table_i(self):
        h = MemoryHierarchy()
        assert h.l1i.config.size_bytes == 32 * 1024 and h.l1i.config.assoc == 8
        assert h.l1d.config.size_bytes == 32 * 1024 and h.l1d.config.hit_latency == 2
        assert h.l2.config.size_bytes == 2 * 1024 * 1024 and h.l2.config.assoc == 16
        assert h.l2.config.hit_latency == 12
        assert h.config.memory_latency == 300
        assert h.config.prefetch_streams == 32
        assert h.config.prefetch_distance == 16
        assert h.config.prefetch_degree == 2
