"""Unit tests for the position-priority select logic and FU constraints."""

from dataclasses import dataclass

import pytest

from repro.iq import AgeMatrix, FuPool, SelectLogic
from repro.isa import FuClass


@dataclass
class FakeUop:
    seq: int
    fu: FuClass = FuClass.IALU


def _requests(*pairs):
    return [(slot, FakeUop(seq, fu)) for slot, seq, fu in pairs]


class TestPositionPriority:
    def test_grants_lowest_slots_first(self):
        sel = SelectLogic(issue_width=2, fu_pool=FuPool(ialu=4))
        granted = sel.select(_requests((1, 10, FuClass.IALU),
                                       (3, 11, FuClass.IALU),
                                       (5, 12, FuClass.IALU)))
        assert [slot for slot, _ in granted] == [1, 3]

    def test_issue_width_cap(self):
        sel = SelectLogic(issue_width=4, fu_pool=FuPool(ialu=8))
        reqs = _requests(*[(i, i, FuClass.IALU) for i in range(8)])
        assert len(sel.select(reqs)) == 4

    def test_empty_requests(self):
        sel = SelectLogic(2, FuPool())
        assert sel.select([]) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectLogic(0, FuPool())


class TestFuConstraints:
    def test_imult_single_issue(self):
        sel = SelectLogic(issue_width=4, fu_pool=FuPool(imult=1))
        reqs = _requests((0, 0, FuClass.IMULT), (1, 1, FuClass.IMULT))
        granted = sel.select(reqs)
        assert len(granted) == 1 and granted[0][0] == 0

    def test_fu_conflict_skips_to_other_class(self):
        sel = SelectLogic(issue_width=3, fu_pool=FuPool(ialu=1, ldst=2))
        reqs = _requests((0, 0, FuClass.IALU), (1, 1, FuClass.IALU),
                         (2, 2, FuClass.LDST))
        granted = sel.select(reqs)
        assert [slot for slot, _ in granted] == [0, 2]

    def test_table_i_mix(self):
        """2 iALU, 1 iMULT, 2 Ld/St, 2 FPU: 7 requests, width 4 grants 4."""
        sel = SelectLogic(issue_width=4, fu_pool=FuPool())
        reqs = _requests(
            (0, 0, FuClass.IALU), (1, 1, FuClass.IALU), (2, 2, FuClass.IALU),
            (3, 3, FuClass.LDST), (4, 4, FuClass.FPU), (5, 5, FuClass.IMULT),
        )
        granted = sel.select(reqs)
        assert [slot for slot, _ in granted] == [0, 1, 3, 4]

    def test_conflict_denials_counted(self):
        sel = SelectLogic(issue_width=1, fu_pool=FuPool())
        sel.select(_requests((0, 0, FuClass.IALU), (1, 1, FuClass.IALU)))
        assert sel.stats.conflict_denials == 1
        assert sel.stats.grants == 1


class TestAgeMatrixIntegration:
    def test_oldest_ready_granted_despite_position(self):
        am = AgeMatrix(8)
        am.insert(5)  # oldest (inserted first)
        am.insert(1)
        sel = SelectLogic(issue_width=1, fu_pool=FuPool(ialu=2), age_matrix=am)
        reqs = _requests((1, 20, FuClass.IALU), (5, 10, FuClass.IALU))
        granted = sel.select(reqs)
        assert [slot for slot, _ in granted] == [5]
        assert sel.stats.age_grants == 1

    def test_remaining_grants_position_based(self):
        am = AgeMatrix(8)
        for slot in (6, 2, 4):
            am.insert(slot)
        sel = SelectLogic(issue_width=2, fu_pool=FuPool(ialu=4), age_matrix=am)
        reqs = _requests((2, 1, FuClass.IALU), (4, 2, FuClass.IALU),
                         (6, 0, FuClass.IALU))
        granted = sel.select(reqs)
        # Age matrix grants slot 6 (oldest), then position pass takes slot 2.
        assert sorted(slot for slot, _ in granted) == [2, 6]

    def test_age_grant_respects_fu_limit(self):
        am = AgeMatrix(4)
        am.insert(3)
        sel = SelectLogic(issue_width=2, fu_pool=FuPool(imult=1), age_matrix=am)
        reqs = _requests((3, 0, FuClass.IMULT))
        assert len(sel.select(reqs)) == 1


class TestFuPool:
    def test_as_dict_covers_all_classes(self):
        d = FuPool().as_dict()
        assert set(d) == set(FuClass)

    def test_scaled_never_below_one(self):
        scaled = FuPool(ialu=2, imult=1, ldst=2, fpu=2).scaled(0.1)
        assert min(scaled.as_dict().values()) == 1

    def test_scaled_rounds(self):
        scaled = FuPool(ialu=2, imult=1, ldst=2, fpu=2).scaled(1.5)
        assert scaled.ialu == 3
