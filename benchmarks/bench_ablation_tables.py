"""Ablation (Sec. IV): set-associative vs low-associativity PUBS tables.

The paper chose set-associative tables over a tagless organization "according
to our preliminary evaluation"; here we sweep associativity (a direct-mapped
table is the closest structured analogue of tagless) and table size.
"""

from common import gm_percent, speedups

from repro import ProcessorConfig, PubsConfig
from repro.analysis import render_table

BASE = ProcessorConfig.cortex_a72_like()
PROGRAMS = ["sjeng", "gobmk", "gcc"]
GEOMETRIES = [
    ("64x1 (tiny, direct)", PubsConfig(brslice_sets=64, brslice_assoc=1,
                                       conf_sets=64, conf_assoc=1)),
    ("256x1 (direct)", PubsConfig(brslice_sets=256, brslice_assoc=1,
                                  conf_sets=256, conf_assoc=1)),
    ("256x4 (paper)", PubsConfig()),
    ("512x8 (oversized)", PubsConfig(brslice_sets=512, brslice_assoc=8,
                                     conf_sets=512, conf_assoc=8)),
]


def _run_ablation():
    return {
        label: gm_percent(speedups(PROGRAMS, BASE, BASE.with_pubs(cfg)).values())
        for label, cfg in GEOMETRIES
    }


def test_ablation_table_geometry(benchmark, report):
    out = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    table = render_table(
        ["geometry", "GM speedup %"],
        [[label, out[label]] for label, _ in GEOMETRIES],
    )
    report(
        "Ablation: PUBS table geometry (paper: 256x4 set-associative)",
        table,
    )
    # The paper's geometry captures (nearly) all of the oversized tables'
    # benefit -- the working set of hot slices fits.
    assert out["256x4 (paper)"] > out["512x8 (oversized)"] - 2.0
    # Every geometry keeps PUBS positive (the scheme degrades gracefully).
    assert min(out.values()) > 0.0
