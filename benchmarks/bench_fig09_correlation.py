"""Figure 9: correlation between speedup, branch MPKI and memory intensity.

Paper: among compute-intensive programs (LLC MPKI < 1.0, red dots) the
speedup correlates with branch MPKI; memory-intensive programs (blue dots)
see smaller speedups at the same branch MPKI.
"""

from common import all_workloads, run_cached

from repro import ProcessorConfig
from repro.analysis import correlation, render_scatter

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()


def _run_figure9():
    points = []
    for name in all_workloads():
        base = run_cached(name, BASE)
        pubs = run_cached(name, PUBS)
        points.append({
            "name": name,
            "branch_mpki": base.stats.branch_mpki,
            "speedup_pct": (pubs.stats.ipc / base.stats.ipc - 1) * 100,
            "memory_intensive": base.stats.is_memory_intensive,
        })
    return points


def test_fig09_correlation(benchmark, report):
    points = benchmark.pedantic(_run_figure9, rounds=1, iterations=1)
    scatter = render_scatter(
        [(p["branch_mpki"], p["speedup_pct"],
          "B" if p["memory_intensive"] else "R") for p in points],
        x_label="branch MPKI", y_label="speedup %",
    )
    legend = "R = compute-intensive (LLC MPKI < 1), B = memory-intensive"
    red = [p for p in points if not p["memory_intensive"]]
    blue = [p for p in points if p["memory_intensive"]]
    corr_red = correlation([p["branch_mpki"] for p in red],
                           [p["speedup_pct"] for p in red])
    stats = (f"Pearson r (compute-intensive): {corr_red:.2f}   "
             f"mean speedup red {sum(p['speedup_pct'] for p in red)/len(red):.1f}% "
             f"blue {sum(p['speedup_pct'] for p in blue)/len(blue):.1f}%")
    report("Fig. 9: speedup vs branch MPKI, coloured by memory intensity",
           scatter + "\n" + legend + "\n" + stats)

    # Paper's claims: positive correlation for red dots; blue depressed.
    assert corr_red > 0.5, f"compute programs should correlate, r={corr_red:.2f}"
    hard_red = [p for p in red if p["branch_mpki"] >= 3.0]
    hard_blue = [p for p in blue if p["branch_mpki"] >= 3.0]
    assert hard_red and hard_blue
    mean_red = sum(p["speedup_pct"] for p in hard_red) / len(hard_red)
    mean_blue = sum(p["speedup_pct"] for p in hard_blue) / len(hard_blue)
    assert mean_red > mean_blue, (
        f"compute D-BP ({mean_red:.1f}%) must beat memory D-BP "
        f"({mean_blue:.1f}%)"
    )
