"""Figure 10: sensitivity to the number of priority entries.

Paper: with the stall policy, 2 entries *degrade* below the base (dispatch
stalls dominate), the optimum is 6, and excess entries waste IQ capacity;
the non-stall policy underperforms the stall policy because prioritization
becomes opportunistic.
"""

from common import SWEEP_PROGRAMS, gm_percent, speedups

from repro import ProcessorConfig, PubsConfig
from repro.analysis import render_table

BASE = ProcessorConfig.cortex_a72_like()
#: The paper sweeps 2..10 and finds 6 optimal.  Our synthetic slices are
#: denser than real code's (several concurrent unconfident slices fit in
#: the 128-entry window), which shifts the optimum to a larger partition;
#: the sweep is extended so the characteristic rise-then-rolloff is visible.
ENTRY_COUNTS = [2, 4, 6, 8, 12, 16, 24, 32]


def _run_figure10():
    results = {}
    for entries in ENTRY_COUNTS:
        for stall in (True, False):
            cfg = BASE.with_pubs(PubsConfig(priority_entries=entries,
                                            stall_policy=stall))
            ratios = speedups(SWEEP_PROGRAMS, BASE, cfg)
            results[(entries, stall)] = gm_percent(ratios.values())
    return results


def test_fig10_priority_entries(benchmark, report):
    results = benchmark.pedantic(_run_figure10, rounds=1, iterations=1)
    table = render_table(
        ["priority entries", "stall policy GM %", "non-stall GM %"],
        [[e, results[(e, True)], results[(e, False)]] for e in ENTRY_COUNTS],
    )
    report(
        "Fig. 10: speedup vs number of priority entries over "
        f"{len(SWEEP_PROGRAMS)} D-BP programs (paper: optimum 6, stall "
        "beats non-stall, 2-entry stall below base)",
        table,
    )

    stall = {e: results[(e, True)] for e in ENTRY_COUNTS}
    nonstall = {e: results[(e, False)] for e in ENTRY_COUNTS}
    # Paper shape 1: too few entries with the stall policy degrade BELOW
    # the base (its 2-entry bar) and are the worst point of the sweep.
    assert stall[2] < 0, "2-entry stall must fall below the base"
    assert stall[2] == min(stall.values())
    # Paper shape 2: the curve rises to an interior optimum then rolls off
    # as reserved entries start wasting IQ capacity.
    best_entries = max(stall, key=stall.get)
    assert best_entries not in (2, ENTRY_COUNTS[-1]), (
        f"optimum must be interior, got {best_entries}"
    )
    assert stall[ENTRY_COUNTS[-1]] < stall[best_entries]
    # Paper shape 3: the stall policy beats the opportunistic non-stall
    # policy at the optimum.
    assert stall[best_entries] > nonstall[best_entries]
    # Non-stall never catastrophically degrades (it is opportunistic).
    assert min(nonstall.values()) > -2.0
