"""Shared infrastructure for the benchmark harness.

All experiments run at a reduced instruction budget by default so the full
harness finishes in minutes on a laptop; the trends are stable at this
scale.  Override via the environment for longer, smoother runs:

* ``REPRO_BENCH_INSTRUCTIONS`` -- committed instructions per run (default 8000)
* ``REPRO_BENCH_SKIP``         -- warm-up instructions skipped (default 16000)
* ``REPRO_BENCH_FULL_SWEEPS``  -- set to 1 to sweep all D-BP programs in the
  parameter-sweep figures instead of the representative subset

Simulation results are cached per (workload, config, budget) for the whole
pytest session, so e.g. the Fig. 9 scatter reuses the Fig. 8 runs.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Tuple

from repro import ProcessorConfig, run_workload
from repro.analysis import geometric_mean
from repro.core import SimulationResult

INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "8000"))
SKIP = int(os.environ.get("REPRO_BENCH_SKIP", "16000"))
FULL_SWEEPS = os.environ.get("REPRO_BENCH_FULL_SWEEPS", "0") == "1"

#: Expected D-BP set (verified against measured MPKI by bench_fig08).
D_BP = ["astar", "bzip2", "gcc", "gobmk", "h264ref", "mcf", "omnetpp",
        "perlbench", "sjeng", "soplex", "xalancbmk"]

#: Representative D-BP subset used by the parameter sweeps (Figs. 10-13):
#: compute-bound programs where the swept PUBS parameters actually bind.
SWEEP_PROGRAMS = D_BP if FULL_SWEEPS else [
    "sjeng", "gobmk", "gcc", "bzip2", "perlbench", "astar",
]

_CACHE: Dict[Tuple, SimulationResult] = {}


def run_cached(workload: str, config: ProcessorConfig,
               instructions: int = None, skip: int = None) -> SimulationResult:
    """Session-cached simulation run."""
    instructions = INSTRUCTIONS if instructions is None else instructions
    skip = SKIP if skip is None else skip
    key = (workload, config, instructions, skip)
    result = _CACHE.get(key)
    if result is None:
        result = run_workload(workload, config, instructions, skip)
        _CACHE[key] = result
    return result


def speedups(workloads: Iterable[str], base: ProcessorConfig,
             variant: ProcessorConfig) -> Dict[str, float]:
    """Per-program variant/base IPC ratios."""
    out = {}
    for name in workloads:
        b = run_cached(name, base)
        v = run_cached(name, variant)
        out[name] = v.stats.ipc / b.stats.ipc
    return out


def gm_percent(ratios: Iterable[float]) -> float:
    """Geometric-mean speedup, in percent over 1.0."""
    ratios = list(ratios)
    if not ratios:
        return 0.0
    return (geometric_mean(ratios) - 1.0) * 100.0


def all_workloads() -> List[str]:
    from repro import spec2006_profiles
    return sorted(spec2006_profiles())


def measured_dbp(base: ProcessorConfig) -> List[str]:
    """Programs whose *measured* branch MPKI crosses the 3.0 threshold."""
    return [name for name in all_workloads()
            if run_cached(name, base).stats.is_difficult_branch_prediction]
