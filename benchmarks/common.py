"""Shared infrastructure for the benchmark harness.

All experiments run at a reduced instruction budget by default so the full
harness finishes in minutes on a laptop; the trends are stable at this
scale.  The budget's single source of truth is
:mod:`repro.analysis.runner`: ``BENCH_INSTRUCTIONS`` (default 8000 timed
instructions) and ``BENCH_SKIP`` (default 16000 warm-up instructions),
overridable via ``REPRO_BENCH_INSTRUCTIONS`` / ``REPRO_BENCH_SKIP``.
``REPRO_BENCH_FULL_SWEEPS=1`` sweeps all D-BP programs in the
parameter-sweep figures instead of the representative subset.

Simulation runs go through the shared :class:`repro.exec.SweepExecutor`:
results are deduplicated per session (the Fig. 9 scatter reuses the Fig. 8
runs), persisted in the on-disk cache (``REPRO_CACHE_DIR``, disable with
``REPRO_CACHE=0``), and batched lookups (:func:`prefetch`,
:func:`speedups`) fan out across ``REPRO_JOBS`` worker processes.  A warm
cache makes a full bench re-run perform zero simulations.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional

from repro import ProcessorConfig
from repro.analysis import BENCH_INSTRUCTIONS as INSTRUCTIONS
from repro.analysis import BENCH_SKIP as SKIP
from repro.analysis import geometric_mean
from repro.core import SimulationResult
from repro.exec import SimJob, SweepExecutor, job_key

FULL_SWEEPS = os.environ.get("REPRO_BENCH_FULL_SWEEPS", "0") == "1"

#: Expected D-BP set (verified against measured MPKI by bench_fig08).
D_BP = ["astar", "bzip2", "gcc", "gobmk", "h264ref", "mcf", "omnetpp",
        "perlbench", "sjeng", "soplex", "xalancbmk"]

#: Representative D-BP subset used by the parameter sweeps (Figs. 10-13):
#: compute-bound programs where the swept PUBS parameters actually bind.
SWEEP_PROGRAMS = D_BP if FULL_SWEEPS else [
    "sjeng", "gobmk", "gcc", "bzip2", "perlbench", "astar",
]

_EXECUTOR: Optional[SweepExecutor] = None
#: Session memo keyed by job content hash (saves re-reading the disk cache).
_MEMO: Dict[str, SimulationResult] = {}


def executor() -> SweepExecutor:
    """The harness-wide sweep executor (workers via ``REPRO_JOBS``)."""
    global _EXECUTOR
    if _EXECUTOR is None:
        _EXECUTOR = SweepExecutor()
    return _EXECUTOR


def _job(workload: str, config: ProcessorConfig,
         instructions: Optional[int], skip: Optional[int]) -> SimJob:
    return SimJob.make(
        workload, config,
        INSTRUCTIONS if instructions is None else instructions,
        SKIP if skip is None else skip,
    )


def run_cached(workload: str, config: ProcessorConfig,
               instructions: Optional[int] = None,
               skip: Optional[int] = None) -> SimulationResult:
    """Cached simulation run (session memo + persistent on-disk cache).

    Keys on the *content* of the profile/config/budget, so equal configs
    built twice hit the same entry (the old implementation keyed on the
    config object and missed on rebuilt-but-equal configurations).
    """
    job = _job(workload, config, instructions, skip)
    key = job_key(job)
    result = _MEMO.get(key)
    if result is None:
        result = executor().run_one(job)
        _MEMO[key] = result
    return result


def prefetch(workloads: Iterable[str], configs: Iterable[ProcessorConfig],
             instructions: Optional[int] = None,
             skip: Optional[int] = None) -> None:
    """Simulate a (workload x config) cross product as one parallel batch.

    Subsequent :func:`run_cached` calls for these runs are then pure cache
    hits; call this at the top of a bench to get ``REPRO_JOBS``-way
    parallelism instead of one simulation at a time.
    """
    jobs = [_job(name, config, instructions, skip)
            for config in configs for name in workloads]
    todo = [job for job in jobs if job_key(job) not in _MEMO]
    if not todo:
        return
    for job, result in zip(todo, executor().run(todo)):
        _MEMO[job_key(job)] = result


def speedups(workloads: Iterable[str], base: ProcessorConfig,
             variant: ProcessorConfig) -> Dict[str, float]:
    """Per-program variant/base IPC ratios."""
    names = list(workloads)
    prefetch(names, [base, variant])
    out = {}
    for name in names:
        b = run_cached(name, base)
        v = run_cached(name, variant)
        out[name] = v.stats.ipc / b.stats.ipc
    return out


def gm_percent(ratios: Iterable[float]) -> float:
    """Geometric-mean speedup, in percent over 1.0."""
    ratios = list(ratios)
    if not ratios:
        return 0.0
    return (geometric_mean(ratios) - 1.0) * 100.0


def all_workloads() -> List[str]:
    from repro import spec2006_profiles
    return sorted(spec2006_profiles())


def measured_dbp(base: ProcessorConfig) -> List[str]:
    """Programs whose *measured* branch MPKI crosses the 3.0 threshold."""
    names = all_workloads()
    prefetch(names, [base])
    return [name for name in names
            if run_cached(name, base).stats.is_difficult_branch_prediction]
