"""Tables I and II: base processor and PUBS configuration.

Regenerates the configuration tables so every other bench's machine is
documented in the output.
"""

from common import INSTRUCTIONS, SKIP

from repro import ProcessorConfig, PubsConfig
from repro.analysis import render_table


def _build_tables():
    cfg = ProcessorConfig.cortex_a72_like()
    pubs = PubsConfig()
    table1 = render_table(
        ["parameter", "value"],
        [
            ["pipeline width", f"{cfg.fetch_width}-wide fetch/decode/issue/commit"],
            ["reorder buffer", f"{cfg.rob_size} entries"],
            ["IQ", f"{cfg.iq_size} entries"],
            ["load/store queue", f"{cfg.lsq_size} entries"],
            ["physical registers", f"{cfg.int_phys_regs}(int) + {cfg.fp_phys_regs}(fp)"],
            ["branch prediction", (
                f"{cfg.predictor.history_length}-bit history, "
                f"{cfg.predictor.table_size}-entry perceptron, "
                f"{cfg.predictor.btb_sets}-set {cfg.predictor.btb_assoc}-way BTB, "
                f"{cfg.recovery_penalty}-cycle recovery penalty"
            )],
            ["function units", (
                f"{cfg.fu_pool.ialu} iALU, {cfg.fu_pool.imult} iMULT/DIV, "
                f"{cfg.fu_pool.ldst} Ld/St, {cfg.fu_pool.fpu} FPU"
            )],
            ["L1 I-cache", "32KB, 8-way, 64B line"],
            ["L1 D-cache", "32KB, 8-way, 64B line, 2-cycle hit"],
            ["L2 cache", "2MB, 16-way, 64B line, 12-cycle hit"],
            ["main memory", (
                f"{cfg.memory.memory_latency}-cycle min latency, "
                f"{cfg.memory.memory_bytes_per_cycle}B/cycle bandwidth"
            )],
            ["data prefetch", (
                f"stream-based: {cfg.memory.prefetch_streams} streams, "
                f"{cfg.memory.prefetch_distance}-line distance, "
                f"{cfg.memory.prefetch_degree}-line degree, to L2"
            )],
        ],
    )
    table2 = render_table(
        ["PUBS parameter", "value"],
        [
            ["priority entries", pubs.priority_entries],
            ["dispatch policy", "stall" if pubs.stall_policy else "non-stall"],
            ["confidence counter", f"{pubs.conf_counter_bits}-bit resetting"],
            ["conf_tab", f"{pubs.conf_sets} sets x {pubs.conf_assoc} ways, "
                         f"S={pubs.conf_fold_width} hashed tag"],
            ["brslice_tab", f"{pubs.brslice_sets} sets x {pubs.brslice_assoc} ways, "
                            f"S={pubs.brslice_fold_width} hashed tag"],
            ["mode switch", f"LLC MPKI >= {pubs.mode_switch_threshold_mpki} over "
                            f"{pubs.mode_switch_interval}-instruction windows"],
            ["bench budget", f"{INSTRUCTIONS} instructions after {SKIP} skipped"],
        ],
    )
    return table1 + "\n\n" + table2


def test_tab01_configuration(benchmark, report):
    text = benchmark.pedantic(_build_tables, rounds=1, iterations=1)
    report("Table I/II: base processor and PUBS configuration", text)
    assert "64 entries" in text
    assert "priority entries" in text
