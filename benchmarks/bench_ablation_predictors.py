"""Ablation (footnote 1): astar's extraordinary branch MPKI cross-checked
against gshare, bimode and tournament predictors, as the paper did with
"another simulator (gem5) and/or comparison with other branch predictors".
"""

from common import run_cached

from repro import ProcessorConfig
from repro.analysis import render_table

PREDICTORS = {
    "perceptron": ProcessorConfig.cortex_a72_like(),
    "gshare": ProcessorConfig.cortex_a72_like().with_overrides(
        predictor=ProcessorConfig().predictor.__class__(
            kind="gshare", history_length=12, table_size=4096)),
    "bimode": ProcessorConfig.cortex_a72_like().with_overrides(
        predictor=ProcessorConfig().predictor.__class__(
            kind="bimode", history_length=11, table_size=2048)),
    "tournament": ProcessorConfig.cortex_a72_like().with_overrides(
        predictor=ProcessorConfig().predictor.__class__(kind="tournament")),
}
PROGRAMS = ["astar", "sjeng", "hmmer"]


def _run_ablation():
    out = {}
    for pname, cfg in PREDICTORS.items():
        for prog in PROGRAMS:
            r = run_cached(prog, cfg)
            out[(pname, prog)] = r.stats.branch_mpki
    return out


def test_ablation_predictor_cross_check(benchmark, report):
    out = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    table = render_table(
        ["predictor"] + PROGRAMS,
        [[pname] + [out[(pname, prog)] for prog in PROGRAMS]
         for pname in PREDICTORS],
    )
    report(
        "Ablation (footnote 1): branch MPKI across predictors -- astar's "
        "hard branches are predictor-independent",
        table,
    )
    # astar's branches stay extraordinary under every predictor.
    for pname in PREDICTORS:
        assert out[(pname, "astar")] > 10.0, pname
        assert out[(pname, "astar")] > out[(pname, "sjeng")], pname
        # hmmer stays easy everywhere.
        assert out[(pname, "hmmer")] < 3.0, pname
    # The perceptron is the strongest (or tied) on the learnable program.
    perceptron_hmmer = out[("perceptron", "hmmer")]
    assert perceptron_hmmer <= min(out[(p, "hmmer")] for p in PREDICTORS) + 1.0
