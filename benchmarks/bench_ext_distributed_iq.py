"""Extension (Sec. III-C2): PUBS on a distributed (AMD-Zen-style) IQ.

The paper argues PUBS carries over to distributed IQs by partitioning each
per-unit queue into priority and normal entries.  This bench measures a
distributed machine against the unified baseline and shows PUBS recovers
(more than) the distributed organization's capacity-efficiency loss.
"""

from common import SWEEP_PROGRAMS, gm_percent, run_cached

from repro import ProcessorConfig
from repro.analysis import render_table

BASE = ProcessorConfig.cortex_a72_like()
MODELS = {
    "unified": BASE,
    "unified+PUBS": BASE.with_pubs(),
    "distributed": BASE.with_overrides(distributed_iq=True),
    "distributed+PUBS": BASE.with_overrides(distributed_iq=True).with_pubs(),
}


def _run_extension():
    base_ipc = {p: run_cached(p, BASE).stats.ipc for p in SWEEP_PROGRAMS}
    out = {}
    for label, cfg in MODELS.items():
        out[label] = gm_percent(
            run_cached(p, cfg).stats.ipc / base_ipc[p] for p in SWEEP_PROGRAMS)
    return out


def test_ext_distributed_iq(benchmark, report):
    out = benchmark.pedantic(_run_extension, rounds=1, iterations=1)
    table = render_table(
        ["machine", "GM IPC vs unified base %"],
        [[label, out[label]] for label in MODELS],
    )
    report(
        "Extension (Sec. III-C2): PUBS on a distributed IQ",
        table,
    )
    # The two organizations trade capacity efficiency against select
    # simplicity and are competitive (the paper takes no side): within a
    # few points of each other.
    assert abs(out["distributed"] - out["unified"]) < 5.0
    # PUBS works on the distributed IQ, as the paper claims...
    assert out["distributed+PUBS"] > out["distributed"] + 2.0
    # ...and on the unified one.
    assert out["unified+PUBS"] > 3.0
