"""Ablation (Sec. IV claim): XOR-folded tags "hardly degrade the
performance" at S=8 (brslice_tab) / S=4 (conf_tab).

Two regimes:

* paper geometry (256 sets): the static slice footprint spreads across the
  index space, so folding is loss-free -- exactly the paper's claim;
* stressed geometry (32 sets): sets are contended, and only a degenerate
  1-bit fold shows aliasing losses, confirming the comfortable margin of
  the chosen S=8/S=4 point.
"""

from common import gm_percent, speedups

from repro import ProcessorConfig, PubsConfig
from repro.analysis import render_table

BASE = ProcessorConfig.cortex_a72_like()
PROGRAMS = ["sjeng", "gobmk", "gcc"]
#: (label, brslice sets, conf sets, brslice S, conf S)
VARIANTS = [
    ("paper 256-set, S=8/4", 256, 256, 8, 4),
    ("paper 256-set, wide S=16/16", 256, 256, 16, 16),
    ("stress 32-set, S=1/1", 32, 32, 1, 1),
    ("stress 32-set, S=2/2", 32, 32, 2, 2),
    ("stress 32-set, S=8/4", 32, 32, 8, 4),
    ("stress 32-set, wide S=16/16", 32, 32, 16, 16),
]


def _run_ablation():
    out = {}
    for label, bs, cs, bf, cf in VARIANTS:
        cfg = BASE.with_pubs(PubsConfig(
            brslice_sets=bs, conf_sets=cs,
            brslice_fold_width=bf, conf_fold_width=cf))
        out[label] = gm_percent(speedups(PROGRAMS, BASE, cfg).values())
    return out


def test_ablation_hashed_tag_width(benchmark, report):
    out = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    table = render_table(
        ["variant", "GM speedup %"],
        [[label, out[label]] for label, *_ in VARIANTS],
    )
    report(
        "Ablation: hashed-tag fold width (Sec. IV: S=8/S=4 is loss-free)",
        table,
    )
    # The paper's operating point equals full-width tags at paper geometry.
    assert abs(out["paper 256-set, S=8/4"]
               - out["paper 256-set, wide S=16/16"]) < 1.0
    # Under set contention, S=8/4 still matches wide tags...
    assert abs(out["stress 32-set, S=8/4"]
               - out["stress 32-set, wide S=16/16"]) < 1.5
    # ...while a degenerate 1-bit fold visibly aliases.
    assert (out["stress 32-set, S=1/1"]
            <= out["stress 32-set, S=8/4"] + 0.2)
    # PUBS stays positive even with maximal aliasing (graceful degradation).
    assert min(out.values()) > 2.0
