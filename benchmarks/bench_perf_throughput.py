"""Harness throughput: parallel sweep scaling and simulator speed.

Not a paper figure -- this measures the reproduction's own performance.
A 4-workload x 2-config sweep (cache disabled, so every job simulates)
runs once serially and once with ``min(4, cpu_count)`` workers; the
artifact records wall time per mode, per-job simulated-cycle throughput,
and the parallel speedup.  On a >= 4-core machine the 8-job sweep must
scale at least 2x; single-core machines still exercise both code paths
and record their numbers, but skip the scaling assertion.

Writes ``benchmarks/artifacts/perf_throughput.json`` for trend tracking.
"""

import json
import os
import time
from pathlib import Path

from common import INSTRUCTIONS, SKIP

from repro import ProcessorConfig
from repro.analysis import render_table
from repro.exec import SimJob, SweepExecutor

WORKLOADS = ["sjeng", "gobmk", "gcc", "mcf"]
ARTIFACT = Path(__file__).parent / "artifacts" / "perf_throughput.json"


def _sweep_jobs():
    base = ProcessorConfig.cortex_a72_like()
    return [SimJob.make(name, cfg, INSTRUCTIONS, SKIP)
            for name in WORKLOADS for cfg in (base, base.with_pubs())]


def _timed_run(jobs, workers):
    executor = SweepExecutor(jobs=workers, cache=False)
    start = time.perf_counter()
    results = executor.run(jobs)
    elapsed = time.perf_counter() - start
    assert executor.simulations_run == len(jobs), "cache must be disabled"
    cycles = sum(r.stats.cycles for r in results)
    return {
        "workers": workers,
        "wall_seconds": elapsed,
        "simulated_cycles": cycles,
        "cycles_per_second": cycles / elapsed if elapsed > 0 else 0.0,
    }, results


def test_perf_throughput(report):
    jobs = _sweep_jobs()
    cpus = os.cpu_count() or 1
    workers = min(4, cpus)

    serial, serial_results = _timed_run(jobs, 1)
    parallel, parallel_results = _timed_run(jobs, workers)
    assert parallel_results == serial_results, \
        "parallel execution must be bit-identical to serial"
    speedup = serial["wall_seconds"] / parallel["wall_seconds"] \
        if parallel["wall_seconds"] > 0 else 0.0

    artifact = {
        "sweep": {"workloads": WORKLOADS, "configs": ["base", "pubs"],
                  "jobs": len(jobs), "instructions": INSTRUCTIONS,
                  "skip": SKIP},
        "cpu_count": cpus,
        "serial": serial,
        "parallel": parallel,
        "speedup": speedup,
    }
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    rows = [
        ["jobs in sweep", str(len(jobs))],
        ["serial wall s", f"{serial['wall_seconds']:.2f}"],
        [f"parallel wall s (x{workers})", f"{parallel['wall_seconds']:.2f}"],
        ["speedup", f"{speedup:.2f}x"],
        ["serial cycles/s", f"{serial['cycles_per_second']:,.0f}"],
        ["parallel cycles/s", f"{parallel['cycles_per_second']:,.0f}"],
    ]
    report(f"Harness throughput ({cpus}-core host; artifact: {ARTIFACT.name})",
           render_table(["metric", "value"], rows))

    assert serial["simulated_cycles"] == parallel["simulated_cycles"]
    if cpus >= 4:
        assert speedup >= 2.0, \
            f"8-job sweep with {workers} workers should scale >= 2x on a " \
            f"{cpus}-core machine, measured {speedup:.2f}x"
