"""Harness throughput: parallel sweep scaling, simulator speed, trace replay.

Not a paper figure -- this measures the reproduction's own performance.
Three experiments share ``benchmarks/artifacts/perf_throughput.json``:

``sweep``
    A 4-workload x 2-config sweep (cache disabled, so every job simulates)
    runs once serially and once with ``min(4, cpu_count)`` workers; the
    artifact records wall time per mode, per-job simulated-cycle
    throughput, and the parallel speedup.  On a >= 4-core machine the
    8-job sweep must scale at least 2x.  On a single-core host the
    parallel leg is *skipped* and the artifact says so
    (``parallel_skipped``) -- a 1-worker "parallel" run would only
    measure process-pool overhead and report a meaningless ~1x number.

``frontend``
    Replay vs live at a warmup-heavy budget (the regime the trace
    front end exists for): 2 workloads x 4 warm-sharing PUBS configs,
    sequentially on one core.  The live leg pays the functional warmup
    per run; the replay leg captures each workload once, trains the warm
    checkpoints once, and restores them for the other three configs.
    End-to-end replay must be at least 1.5x faster -- this is the CI
    perf-regression gate -- and bit-identical (asserted per run).

``sampling``
    SimPoint-style sampled simulation vs the full run it estimates, on
    the three smallest bench workloads.  Both legs replay the same
    pre-captured trace, so the comparison is equal-coverage wall time:
    the sampled leg must land within ``CPI_ERROR_GATE`` (3%) of the
    full-run CPI on every workload while simulating at most 1/3 of the
    timed records, and the aggregate serial speedup must be >= 3x.
    Also records the per-PC static-decode memo's lookup-throughput
    delta over ``Program.at`` (the replay front end's hot path).

``batched``
    Batched multi-config replay (DESIGN.md §12) vs sequential replay on
    a Fig. 10-style sweep: 8 PUBS priority-entry configs replaying one
    region window with a warmup-heavy budget.  Sequential replay trains
    the warm spans once per config; the batched walk decodes the trace
    and trains warm state once for the whole batch.  Batched must be at
    least 3x faster end to end -- the CI batched-replay gate -- and
    bit-identical per member (asserted).

``paired``
    Paired differential estimation + whole-table budget control
    (DESIGN.md §14) vs per-cell independent adaptive sampling, at the
    same CI target on the base-vs-PUBS mcf/sjeng/gcc table.  The
    independent leg drives every (config, workload) cell's own CPI CI
    to the target; the paired leg lets the :class:`TableController`
    stop each workload as soon as the *paired speedup* CI -- the
    table's actual deliverable -- meets the same target.  Gates: the
    paired leg must simulate at least 2x fewer timed records in total,
    its speedup point estimates must land within ``CPI_ERROR_GATE``
    (3%) of the full-simulation speedups, and every workload's paired
    CI must really meet the target.
"""

import dataclasses
import json
import os
import time
from pathlib import Path

from common import INSTRUCTIONS, SKIP

from repro import ProcessorConfig
from repro.analysis import render_table
from repro.core.simulator import simulate
from repro.exec import SimJob, SweepExecutor
from repro.sampling import (
    CPI_ERROR_GATE,
    DEFAULT_DETAIL,
    DEFAULT_MAX_FRACTION,
    DEFAULT_MEASURE,
    DEFAULT_REGIONS,
    sample_workload,
    sample_workload_adaptive,
    sampled_vs_full_error,
)
from repro.trace import TraceStore
from repro.trace.replay import INST_BYTES, static_decode_table
from repro.trace.store import REPLAY_MARGIN
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

WORKLOADS = ["sjeng", "gobmk", "gcc", "mcf"]
ARTIFACT = Path(__file__).parent / "artifacts" / "perf_throughput.json"

#: Frontend comparison budget: long warmup, short timed region -- the
#: shape of a convergence-checked sweep point, where live mode spends
#: most of its wall time in the functional skip loop.
FRONTEND_WORKLOADS = ["sjeng", "gcc"]
FRONTEND_INSTRUCTIONS = int(
    os.environ.get("REPRO_BENCH_FRONTEND_INSTRUCTIONS", "2000"))
FRONTEND_SKIP = int(os.environ.get("REPRO_BENCH_FRONTEND_SKIP", "40000"))
#: Replay end-to-end (capture + warm + timed) must beat live by this much.
FRONTEND_MIN_SPEEDUP = 1.5

#: Sampling comparison: the three smallest static programs in the bench
#: set, at a span long enough for the per-window variance to matter.
SAMPLING_WORKLOADS = ["mcf", "sjeng", "gcc"]
SAMPLING_INSTRUCTIONS = int(
    os.environ.get("REPRO_BENCH_SAMPLING_INSTRUCTIONS", "60000"))
SAMPLING_SKIP = int(os.environ.get("REPRO_BENCH_SAMPLING_SKIP", "2000"))
#: Sampled leg must beat the full run by this much, aggregated serially.
SAMPLING_MIN_SPEEDUP = 3.0


def _update_artifact(section, payload):
    """Merge ``payload`` under ``section`` in the shared artifact file."""
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            data = {}
    # Drop anything that is not a current section (e.g. the pre-section
    # flat layout) so the artifact never accumulates stale keys.
    data = {k: v for k, v in data.items()
            if k in ("sweep", "frontend", "sampling", "adaptive", "batched",
                     "paired")}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2) + "\n")


# ----------------------------------------------------------------------
# Sweep scaling (serial vs parallel)
# ----------------------------------------------------------------------

def _sweep_jobs():
    base = ProcessorConfig.cortex_a72_like()
    return [SimJob.make(name, cfg, INSTRUCTIONS, SKIP)
            for name in WORKLOADS for cfg in (base, base.with_pubs())]


def _timed_run(jobs, workers):
    executor = SweepExecutor(jobs=workers, cache=False)
    start = time.perf_counter()
    results = executor.run(jobs)
    elapsed = time.perf_counter() - start
    assert executor.simulations_run == len(jobs), "cache must be disabled"
    cycles = sum(r.stats.cycles for r in results)
    return {
        "workers": workers,
        "wall_seconds": elapsed,
        "simulated_cycles": cycles,
        "cycles_per_second": cycles / elapsed if elapsed > 0 else 0.0,
    }, results


def test_perf_throughput(report):
    jobs = _sweep_jobs()
    cpus = os.cpu_count() or 1
    workers = min(4, cpus)

    serial, serial_results = _timed_run(jobs, 1)
    rows = [
        ["jobs in sweep", str(len(jobs))],
        ["serial wall s", f"{serial['wall_seconds']:.2f}"],
        ["serial cycles/s", f"{serial['cycles_per_second']:,.0f}"],
    ]
    artifact = {
        "workloads": WORKLOADS, "configs": ["base", "pubs"],
        "jobs": len(jobs), "instructions": INSTRUCTIONS, "skip": SKIP,
        "cpu_count": cpus,
        "serial": serial,
        "parallel_skipped": cpus < 2,
    }

    if cpus < 2:
        # One core: a worker pool cannot speed anything up; running it
        # anyway would record ~1x "speedup" that is really pool overhead.
        artifact["parallel"] = None
        artifact["speedup"] = None
        rows.append(["parallel", "skipped (single-core host)"])
    else:
        parallel, parallel_results = _timed_run(jobs, workers)
        assert parallel_results == serial_results, \
            "parallel execution must be bit-identical to serial"
        assert serial["simulated_cycles"] == parallel["simulated_cycles"]
        speedup = serial["wall_seconds"] / parallel["wall_seconds"] \
            if parallel["wall_seconds"] > 0 else 0.0
        artifact["parallel"] = parallel
        artifact["speedup"] = speedup
        rows += [
            [f"parallel wall s (x{workers})",
             f"{parallel['wall_seconds']:.2f}"],
            ["parallel cycles/s", f"{parallel['cycles_per_second']:,.0f}"],
            ["speedup", f"{speedup:.2f}x"],
        ]

    _update_artifact("sweep", artifact)
    report(f"Harness throughput ({cpus}-core host; artifact: {ARTIFACT.name})",
           render_table(["metric", "value"], rows))

    if cpus >= 4:
        assert artifact["speedup"] >= 2.0, \
            f"8-job sweep with {workers} workers should scale >= 2x on a " \
            f"{cpus}-core machine, measured {artifact['speedup']:.2f}x"


# ----------------------------------------------------------------------
# Trace replay vs live front end
# ----------------------------------------------------------------------

def _frontend_configs():
    """Four PUBS configs differing only in warm-excluded knobs, so every
    run after the first restores the shared warm checkpoints."""
    base = ProcessorConfig.cortex_a72_like()
    pubs = base.pubs.with_overrides(enabled=True)
    return [base.with_pubs(pubs.with_overrides(priority_entries=entries))
            for entries in (4, 6, 8, 10)]


def _timed_frontend_leg(frontend, programs, store):
    start = time.perf_counter()
    results = []
    for workload, (program, mem_seed) in programs.items():
        for cfg in _frontend_configs():
            results.append(simulate(
                program, cfg.with_frontend(frontend),
                max_instructions=FRONTEND_INSTRUCTIONS,
                skip_instructions=FRONTEND_SKIP,
                mem_seed=mem_seed,
                trace_source=store if frontend == "replay" else None))
    elapsed = time.perf_counter() - start
    cycles = sum(r.stats.cycles for r in results)
    return {
        "wall_seconds": elapsed,
        "runs": len(results),
        "simulated_cycles": cycles,
        "cycles_per_second": cycles / elapsed if elapsed > 0 else 0.0,
    }, results


def test_frontend_replay_speedup(report):
    programs = {}
    for workload in FRONTEND_WORKLOADS:
        profile = get_profile(workload)
        programs[workload] = (build_program(profile), profile.mem_seed)
    store = TraceStore(persistent=False)  # capture cost counts as replay's

    live, live_results = _timed_frontend_leg("live", programs, None)
    replay, replay_results = _timed_frontend_leg("replay", programs, store)

    for lv, rp in zip(live_results, replay_results):
        assert dataclasses.asdict(rp.stats) == dataclasses.asdict(lv.stats), \
            "replay must stay bit-identical to live"
    speedup = live["wall_seconds"] / replay["wall_seconds"] \
        if replay["wall_seconds"] > 0 else 0.0

    artifact = {
        "workloads": FRONTEND_WORKLOADS,
        "configs": len(_frontend_configs()),
        "instructions": FRONTEND_INSTRUCTIONS,
        "skip": FRONTEND_SKIP,
        "live": live,
        "replay": replay,
        "trace_store": store.summary(),
        "speedup": speedup,
        "min_speedup": FRONTEND_MIN_SPEEDUP,
    }
    _update_artifact("frontend", artifact)

    rows = [
        ["runs per leg", str(live["runs"])],
        ["budget (skip + timed)",
         f"{FRONTEND_SKIP:,} + {FRONTEND_INSTRUCTIONS:,}"],
        ["live wall s", f"{live['wall_seconds']:.2f}"],
        ["replay wall s", f"{replay['wall_seconds']:.2f}"],
        ["replay cycles/s", f"{replay['cycles_per_second']:,.0f}"],
        ["speedup", f"{speedup:.2f}x (gate: {FRONTEND_MIN_SPEEDUP}x)"],
        ["trace store", store.summary()],
    ]
    report(f"Trace replay vs live front end (artifact: {ARTIFACT.name})",
           render_table(["metric", "value"], rows))

    assert speedup >= FRONTEND_MIN_SPEEDUP, \
        f"replay sweep must run >= {FRONTEND_MIN_SPEEDUP}x faster than " \
        f"live end to end, measured {speedup:.2f}x"


# ----------------------------------------------------------------------
# Sampled simulation vs full run
# ----------------------------------------------------------------------

def _decode_throughput(program, trace):
    """Lookups/second decoding every trace PC, memoized vs ``Program.at``."""
    pcs = trace.pcs
    table = static_decode_table(program)

    start = time.perf_counter()
    for pc in pcs:
        program.at(pc)
    at_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    for pc in pcs:
        table[pc // INST_BYTES]
    table_elapsed = time.perf_counter() - start

    return {
        "lookups": len(pcs),
        "program_at_per_second": len(pcs) / at_elapsed if at_elapsed else 0.0,
        "decode_table_per_second":
            len(pcs) / table_elapsed if table_elapsed else 0.0,
        "speedup": at_elapsed / table_elapsed if table_elapsed else 0.0,
    }


def test_sampling_accuracy_speedup(report):
    cfg = ProcessorConfig.cortex_a72_like()
    store = TraceStore(persistent=False)
    records = SAMPLING_SKIP + SAMPLING_INSTRUCTIONS + REPLAY_MARGIN

    rows = []
    per_workload = {}
    full_wall = sampled_wall = 0.0
    decode = None
    for workload in SAMPLING_WORKLOADS:
        profile = get_profile(workload)
        program = build_program(profile)
        # Both legs replay the same trace, so capture is excluded from
        # the timing: the gate is equal-coverage wall time.
        trace = store.acquire(program, profile.mem_seed, records)
        if decode is None:
            decode = _decode_throughput(program, trace)

        start = time.perf_counter()
        full = simulate(program, cfg.with_frontend("replay"),
                        max_instructions=SAMPLING_INSTRUCTIONS,
                        skip_instructions=SAMPLING_SKIP,
                        mem_seed=profile.mem_seed, trace_source=store)
        full_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        sampled = sample_workload(workload, cfg,
                                  instructions=SAMPLING_INSTRUCTIONS,
                                  skip=SAMPLING_SKIP,
                                  jobs=1, cache=False, store=store)
        sampled_elapsed = time.perf_counter() - start

        error = sampled_vs_full_error(sampled, full)
        full_cpi = full.stats.cycles / full.stats.committed
        full_wall += full_elapsed
        sampled_wall += sampled_elapsed
        per_workload[workload] = {
            "full_cpi": full_cpi,
            "sampled_cpi": sampled.cpi.point,
            "error": error,
            "regions": len(sampled.plan.regions),
            "coverage": sampled.coverage,
            "full_wall_seconds": full_elapsed,
            "sampled_wall_seconds": sampled_elapsed,
            "speedup": full_elapsed / sampled_elapsed
            if sampled_elapsed else 0.0,
        }
        rows.append([workload, f"{full_cpi:.4f}", f"{sampled.cpi.point:.4f}",
                     f"{error:.2%}", str(len(sampled.plan.regions)),
                     f"{sampled.coverage:.1%}",
                     f"{per_workload[workload]['speedup']:.2f}x"])
        assert error <= CPI_ERROR_GATE, \
            f"{workload}: sampled CPI off by {error:.2%} " \
            f"(gate {CPI_ERROR_GATE:.0%})"
        assert sampled.coverage <= DEFAULT_MAX_FRACTION + 1e-9, \
            f"{workload}: simulated {sampled.coverage:.1%} of the span, " \
            f"over the {DEFAULT_MAX_FRACTION:.1%} budget"

    speedup = full_wall / sampled_wall if sampled_wall else 0.0
    artifact = {
        "workloads": SAMPLING_WORKLOADS,
        "instructions": SAMPLING_INSTRUCTIONS,
        "skip": SAMPLING_SKIP,
        "error_gate": CPI_ERROR_GATE,
        "max_fraction": DEFAULT_MAX_FRACTION,
        "per_workload": per_workload,
        "full_wall_seconds": full_wall,
        "sampled_wall_seconds": sampled_wall,
        "speedup": speedup,
        "min_speedup": SAMPLING_MIN_SPEEDUP,
        "decode_memo": decode,
    }
    _update_artifact("sampling", artifact)

    rows.append(["aggregate", "", "", "", "", "",
                 f"{speedup:.2f}x (gate: {SAMPLING_MIN_SPEEDUP}x)"])
    rows.append(["decode memo", "", "", "", "", "",
                 f"{decode['speedup']:.1f}x vs Program.at"])
    report(f"Sampled vs full simulation (artifact: {ARTIFACT.name})",
           render_table(["workload", "full CPI", "sampled CPI", "error",
                         "regions", "coverage", "speedup"], rows))

    assert speedup >= SAMPLING_MIN_SPEEDUP, \
        f"sampling must run >= {SAMPLING_MIN_SPEEDUP}x faster than the " \
        f"full runs in aggregate, measured {speedup:.2f}x"


# ----------------------------------------------------------------------
# Adaptive sampling: honest CIs at below-fixed cost
# ----------------------------------------------------------------------

#: Adaptive must simulate fewer records than the fixed 8-region plan on
#: at least this many of the gated workloads (gcc's phase variance makes
#: it legitimately escalate past 8 -- spend is supposed to follow
#: variance, so one expensive workload is not a failure).
ADAPTIVE_MIN_CHEAPER = 2


def test_adaptive_sampling_honesty(report):
    """The sampled speedup table with CIs, against full-budget goldens.

    Two gates: every (config, workload) cell's full-budget CPI must land
    inside the cell's reported 95% CI, and adaptive escalation must
    spend less than the fixed ``DEFAULT_REGIONS``-region plan on at
    least ``ADAPTIVE_MIN_CHEAPER`` of the three workloads (converging
    early where variance is low, instead of paying k=8 everywhere).
    """
    base = ProcessorConfig.cortex_a72_like()
    configs = {"base": base, "pubs": base.with_pubs()}
    store = TraceStore(persistent=False)
    fixed_records = DEFAULT_REGIONS * (DEFAULT_MEASURE + DEFAULT_DETAIL)
    # The fixed plan must not itself be budget-capped below 8 regions at
    # this span, or the comparison would be against a strawman.
    assert int(SAMPLING_INSTRUCTIONS * DEFAULT_MAX_FRACTION) \
        >= fixed_records

    rows = []
    per_workload = {}
    cells_inside = cells_total = 0
    for workload in SAMPLING_WORKLOADS:
        profile = get_profile(workload)
        program = build_program(profile)
        store.acquire(program, profile.mem_seed,
                      SAMPLING_SKIP + SAMPLING_INSTRUCTIONS + REPLAY_MARGIN)
        cells = {}
        for config_name, cfg in configs.items():
            full = simulate(program, cfg.with_frontend("replay"),
                            max_instructions=SAMPLING_INSTRUCTIONS,
                            skip_instructions=SAMPLING_SKIP,
                            mem_seed=profile.mem_seed, trace_source=store)
            run = sample_workload_adaptive(
                workload, cfg, instructions=SAMPLING_INSTRUCTIONS,
                skip=SAMPLING_SKIP, jobs=1, cache=False, store=store)
            golden = full.stats.cycles / full.stats.committed
            lo, hi = run.cpi.ci95
            inside = lo <= golden <= hi
            cells_total += 1
            cells_inside += inside
            cells[config_name] = {
                "full_cpi": golden,
                "sampled_cpi": run.cpi.point,
                "ci95": [lo, hi],
                "inside": inside,
                "regions": len(run.plan.regions),
                "rounds": len(run.rounds),
                "converged": run.converged,
                "simulated_records": run.simulated_records,
            }
            rows.append([workload, config_name, f"{golden:.4f}",
                         f"{run.cpi.point:.4f}", f"{lo:.4f}..{hi:.4f}",
                         "yes" if inside else "NO",
                         str(len(run.plan.regions)),
                         str(run.simulated_records)])
        adaptive_records = max(c["simulated_records"]
                               for c in cells.values())
        per_workload[workload] = {
            "cells": cells,
            "adaptive_records": adaptive_records,
            "fixed_records": fixed_records,
            "cheaper_than_fixed": adaptive_records < fixed_records,
        }

    cheaper = sum(w["cheaper_than_fixed"] for w in per_workload.values())
    artifact = {
        "workloads": SAMPLING_WORKLOADS,
        "instructions": SAMPLING_INSTRUCTIONS,
        "skip": SAMPLING_SKIP,
        "fixed_records": fixed_records,
        "per_workload": per_workload,
        "cells_inside": cells_inside,
        "cells_total": cells_total,
        "cheaper_than_fixed": cheaper,
        "min_cheaper": ADAPTIVE_MIN_CHEAPER,
    }
    _update_artifact("adaptive", artifact)

    rows.append(["cheaper than fixed k=8", "", "", "", "", "",
                 "", f"{cheaper}/{len(SAMPLING_WORKLOADS)} "
                 f"(gate: {ADAPTIVE_MIN_CHEAPER})"])
    report(f"Adaptive sampling vs full-budget goldens "
           f"(artifact: {ARTIFACT.name})",
           render_table(["workload", "config", "full CPI", "sampled",
                         "95% CI", "inside", "regions", "records"], rows))

    assert cells_inside == cells_total, \
        f"only {cells_inside}/{cells_total} cells contained the " \
        f"full-budget CPI inside their reported 95% CI"
    assert cheaper >= ADAPTIVE_MIN_CHEAPER, \
        f"adaptive simulated fewer records than the fixed " \
        f"{DEFAULT_REGIONS}-region plan on only {cheaper} of " \
        f"{len(SAMPLING_WORKLOADS)} workloads " \
        f"(gate: {ADAPTIVE_MIN_CHEAPER})"


# ----------------------------------------------------------------------
# Batched multi-config replay vs sequential replay
# ----------------------------------------------------------------------

#: A Fig. 10-style design-space sweep: one workload, one region window,
#: eight issue-policy points.  All eight share one warm equivalence
#: class, so the batched walk trains the warm spans once.
BATCHED_WORKLOAD = "sjeng"
BATCHED_PRIORITY_ENTRIES = (2, 3, 4, 5, 6, 8, 10, 12)
BATCHED_REGION_START = int(
    os.environ.get("REPRO_BENCH_BATCHED_START", "110000"))
BATCHED_WARMUP = int(os.environ.get("REPRO_BENCH_BATCHED_WARMUP", "96000"))
BATCHED_MEASURE = int(os.environ.get("REPRO_BENCH_BATCHED_MEASURE", "128"))
BATCHED_DETAIL = int(os.environ.get("REPRO_BENCH_BATCHED_DETAIL", "32"))
#: Batched replay must beat sequential replay by this much end to end.
BATCHED_MIN_SPEEDUP = 3.0


def _batched_jobs():
    from repro.pubs import PubsConfig
    base = ProcessorConfig.cortex_a72_like()
    profile = get_profile(BATCHED_WORKLOAD)
    region = (BATCHED_REGION_START, BATCHED_WARMUP, BATCHED_DETAIL)
    return [SimJob(profile,
                   base.with_pubs(PubsConfig(priority_entries=entries))
                       .with_region(*region),
                   BATCHED_MEASURE, 0)
            for entries in BATCHED_PRIORITY_ENTRIES]


def test_batched_replay_speedup(report):
    from repro.batch import run_batch

    profile = get_profile(BATCHED_WORKLOAD)
    program = build_program(profile)
    store = TraceStore(persistent=False)
    # Both legs replay the same pre-captured trace: the gate measures
    # the per-config work batching hoists, not capture cost.
    store.acquire(program, profile.mem_seed,
                  BATCHED_REGION_START + BATCHED_MEASURE + REPLAY_MARGIN)
    jobs = _batched_jobs()

    # The warmup is deliberately partial (warmup < region seat), so the
    # sequential leg honestly re-trains the warm spans per config -- the
    # cost every sampled sweep pays today -- instead of hitting the
    # full-prefix warm-checkpoint store.
    assert BATCHED_WARMUP < BATCHED_REGION_START - BATCHED_DETAIL

    def best_of(reps, leg):
        best, results = float("inf"), None
        for _ in range(reps):
            start = time.perf_counter()
            results = leg()
            best = min(best, time.perf_counter() - start)
        return best, results

    # Best-of-N on both legs: each is well under a second, so one
    # scheduler hiccup would otherwise dominate the measured ratio.
    sequential_elapsed, sequential = best_of(2, lambda: [
        simulate(program, job.config,
                 max_instructions=job.instructions,
                 skip_instructions=job.skip,
                 mem_seed=profile.mem_seed, trace_source=store)
        for job in jobs])
    batched_elapsed, batched = best_of(3,
                                       lambda: run_batch(jobs,
                                                         trace_source=store))

    for seq, bat in zip(sequential, batched):
        assert dataclasses.asdict(bat) == dataclasses.asdict(seq), \
            "batched replay must stay bit-identical to sequential replay"
    speedup = sequential_elapsed / batched_elapsed \
        if batched_elapsed > 0 else 0.0

    artifact = {
        "workload": BATCHED_WORKLOAD,
        "configs": len(jobs),
        "priority_entries": list(BATCHED_PRIORITY_ENTRIES),
        "region_start": BATCHED_REGION_START,
        "warmup": BATCHED_WARMUP,
        "measure": BATCHED_MEASURE,
        "detail": BATCHED_DETAIL,
        "sequential_wall_seconds": sequential_elapsed,
        "batched_wall_seconds": batched_elapsed,
        "speedup": speedup,
        "min_speedup": BATCHED_MIN_SPEEDUP,
    }
    _update_artifact("batched", artifact)

    rows = [
        ["configs in batch", str(len(jobs))],
        ["region (start/warmup/measure+detail)",
         f"{BATCHED_REGION_START:,} / {BATCHED_WARMUP:,} / "
         f"{BATCHED_MEASURE + BATCHED_DETAIL:,}"],
        ["sequential wall s", f"{sequential_elapsed:.2f}"],
        ["batched wall s", f"{batched_elapsed:.2f}"],
        ["speedup", f"{speedup:.2f}x (gate: {BATCHED_MIN_SPEEDUP}x)"],
    ]
    report(f"Batched vs sequential replay (artifact: {ARTIFACT.name})",
           render_table(["metric", "value"], rows))

    assert speedup >= BATCHED_MIN_SPEEDUP, \
        f"batched replay must run >= {BATCHED_MIN_SPEEDUP}x faster than " \
        f"sequential replay on this sweep, measured {speedup:.2f}x"


# ----------------------------------------------------------------------
# Paired estimation + table budget control vs per-cell adaptive
# ----------------------------------------------------------------------

#: The whole-table precision target both legs are driven to.  Tight
#: enough that the independent leg must escalate per-cell CPI CIs well
#: past the starting set (sjeng's and gcc's phase variance keeps their
#: CPI CIs above it all the way to the region cap), while the paired
#: speedup CI -- common-mode window variance cancelled -- meets it on
#: the starting set.
PAIRED_CI_TARGET = float(
    os.environ.get("REPRO_BENCH_PAIRED_CI_TARGET", "0.025"))
#: The paired/controller leg must spend at least this many times fewer
#: simulated records than the independent leg at the same target.
PAIRED_MIN_REDUCTION = 2.0
#: The compared machines: a recovery-penalty sensitivity pair (the
#: paper's central quantity).  The penalty delta costs each window in
#: proportion to its mispredictions, so the per-window CPI *ratio* is
#: phase-stable even where the CPIs themselves swing -- the regime the
#: paired estimator exists for, and exactly the kind of design-space
#: delta a table query compares.
PAIRED_RECOVERY_PENALTY = 12
#: Measurement window for both sampled legs.  Finer than the CPI
#: benches' default: small windows resolve gcc's phase structure well
#: enough that the three starting medoids weight the *ratio* correctly,
#: while the extra per-window noise they add is common-mode and cancels
#: in the pairing -- it only inflates the per-cell CPI CIs the
#: independent leg chases, which is the cost asymmetry under test.
PAIRED_MEASURE = int(os.environ.get("REPRO_BENCH_PAIRED_MEASURE", "512"))


def test_paired_budget_reduction(report):
    from repro.sampling import (
        AdaptiveSession,
        TableController,
        paired_speedup,
        sample_workload_adaptive_many,
    )

    base = ProcessorConfig.cortex_a72_like()
    configs = {"base": base,
               "slow-recovery": base.with_overrides(
                   recovery_penalty=PAIRED_RECOVERY_PENALTY)}
    store = TraceStore(persistent=False)

    full_speedups = {}
    independent = {}
    controller = TableController(PAIRED_CI_TARGET, paired=True)
    for workload in SAMPLING_WORKLOADS:
        profile = get_profile(workload)
        program = build_program(profile)
        store.acquire(program, profile.mem_seed,
                      SAMPLING_SKIP + SAMPLING_INSTRUCTIONS + REPLAY_MARGIN)
        full_cpi = {}
        for config_name, cfg in configs.items():
            full = simulate(program, cfg.with_frontend("replay"),
                            max_instructions=SAMPLING_INSTRUCTIONS,
                            skip_instructions=SAMPLING_SKIP,
                            mem_seed=profile.mem_seed, trace_source=store)
            full_cpi[config_name] = full.stats.cycles / full.stats.committed
        first, second = configs
        full_speedups[workload] = full_cpi[first] / full_cpi[second]

        # Leg A: every cell escalates to its own CPI CI target.
        runs = sample_workload_adaptive_many(
            workload, list(configs.values()),
            instructions=SAMPLING_INSTRUCTIONS, skip=SAMPLING_SKIP,
            ci_target=PAIRED_CI_TARGET, measure=PAIRED_MEASURE,
            jobs=1, cache=False, store=store)
        independent[workload] = sum(run.simulated_records for run in runs)

        # Leg B: the controller stops on the paired speedup CI instead.
        controller.add(workload, AdaptiveSession(
            workload, list(configs.values()),
            instructions=SAMPLING_INSTRUCTIONS, skip=SAMPLING_SKIP,
            ci_target=PAIRED_CI_TARGET, measure=PAIRED_MEASURE,
            jobs=1, cache=False, store=store))

    controller.run()
    table = controller.results()

    rows = []
    per_workload = {}
    for workload in SAMPLING_WORKLOADS:
        runs = table[workload]
        estimate = paired_speedup(runs[0], runs[1])
        assert estimate is not None, \
            f"{workload}: lockstep escalation must keep the schedules " \
            f"shared -- pairing cannot fall back here"
        paired_records = sum(run.simulated_records for run in runs)
        error = abs(estimate.point / full_speedups[workload] - 1.0)
        per_workload[workload] = {
            "full_speedup": full_speedups[workload],
            "paired_speedup": estimate.point,
            "error": error,
            "paired_relative_ci": estimate.relative_error,
            "shared_regions": estimate.n,
            "independent_records": independent[workload],
            "paired_records": paired_records,
            "converged": runs[0].converged,
        }
        rows.append([workload, f"{full_speedups[workload]:.4f}",
                     f"{estimate.point:.4f}", f"{error:.2%}",
                     f"{estimate.relative_error:.2%}",
                     str(independent[workload]), str(paired_records)])
        assert error <= CPI_ERROR_GATE, \
            f"{workload}: paired speedup off by {error:.2%} from the " \
            f"full simulation (gate {CPI_ERROR_GATE:.0%})"
        assert runs[0].converged \
            and estimate.relative_error <= PAIRED_CI_TARGET, \
            f"{workload}: controller stopped at paired CI " \
            f"{estimate.relative_error:.2%} without meeting the " \
            f"{PAIRED_CI_TARGET:.2%} target"

    independent_records = sum(independent.values())
    paired_records = controller.simulated_records
    reduction = independent_records / paired_records \
        if paired_records else 0.0
    artifact = {
        "workloads": SAMPLING_WORKLOADS,
        "instructions": SAMPLING_INSTRUCTIONS,
        "skip": SAMPLING_SKIP,
        "measure": PAIRED_MEASURE,
        "ci_target": PAIRED_CI_TARGET,
        "error_gate": CPI_ERROR_GATE,
        "per_workload": per_workload,
        "independent_records": independent_records,
        "paired_records": paired_records,
        "reduction": reduction,
        "min_reduction": PAIRED_MIN_REDUCTION,
    }
    _update_artifact("paired", artifact)

    rows.append(["total", "", "", "", "", str(independent_records),
                 f"{paired_records} ({reduction:.2f}x less, "
                 f"gate: {PAIRED_MIN_REDUCTION}x)"])
    report(f"Paired + table-budget vs per-cell adaptive at CI target "
           f"{PAIRED_CI_TARGET:.1%} (artifact: {ARTIFACT.name})",
           render_table(["workload", "full speedup", "paired speedup",
                         "error", "paired CI", "indep records",
                         "paired records"], rows))

    assert reduction >= PAIRED_MIN_REDUCTION, \
        f"paired/table-budget estimation must reach the {PAIRED_CI_TARGET:.2%} " \
        f"whole-table target with >= {PAIRED_MIN_REDUCTION}x fewer simulated " \
        f"records than per-cell adaptive, measured {reduction:.2f}x"
