"""Figure 15: comparison with an IQ using the age matrix.

Paper, Fig. 15(a): AGE raises IPC (+6.5% D-BP) but PUBS (+7.8%) edges it in
D-BP (in E-BP AGE is slightly ahead); PUBS+AGE combines both views of
criticality (+10.2%).  Fig. 15(b): the age matrix lengthens the IQ critical
path by 13%; charging that to the clock, PUBS outperforms AGE by 11.1% in
D-BP.

Our reproduction holds all of Fig. 15's ordering claims except that AGE's
IPC can land slightly *above* PUBS's on the compute-heavy subset (the two
are within a couple of points in the paper as well); EXPERIMENTS.md
discusses the deviation.  The performance conclusion -- PUBS wins once AGE
pays for its wires -- is robust.
"""

from common import D_BP, SWEEP_PROGRAMS, gm_percent, run_cached, speedups

from repro import AGE_MATRIX_IQ_DELAY_FACTOR, ProcessorConfig
from repro.analysis import performance_ratio_with_clock, render_table

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()
AGE = BASE.with_age_matrix()
PUBS_AGE = PUBS.with_age_matrix()

EASY_SUBSET = ["hmmer", "namd", "povray", "gamess", "milc", "lbm"]


def _run_figure15():
    out = {}
    for label, cfg in (("PUBS", PUBS), ("AGE", AGE), ("PUBS+AGE", PUBS_AGE)):
        out[label] = {
            "dbp": gm_percent(speedups(SWEEP_PROGRAMS, BASE, cfg).values()),
            "ebp": gm_percent(speedups(EASY_SUBSET, BASE, cfg).values()),
        }
    # Fig. 15(b): performance of PUBS over AGE with AGE's clock penalty.
    perf = []
    for name in SWEEP_PROGRAMS:
        ipc_pubs = run_cached(name, PUBS).stats.ipc
        ipc_age = run_cached(name, AGE).stats.ipc
        perf.append(performance_ratio_with_clock(
            ipc_pubs, ipc_age, AGE_MATRIX_IQ_DELAY_FACTOR))
    out["perf_pubs_over_age"] = gm_percent(perf)
    return out


def test_fig15_age_matrix(benchmark, report):
    out = benchmark.pedantic(_run_figure15, rounds=1, iterations=1)
    table = render_table(
        ["model", "GM diff (D-BP) %", "GM easy (E-BP) %"],
        [[label, out[label]["dbp"], out[label]["ebp"]]
         for label in ("PUBS", "AGE", "PUBS+AGE")],
    )
    extra = (
        f"Fig. 15(b): performance of PUBS over AGE assuming the age matrix "
        f"adds {100 * (AGE_MATRIX_IQ_DELAY_FACTOR - 1):.0f}% IQ delay to the "
        f"clock period: {out['perf_pubs_over_age']:+.1f}% "
        f"(paper: +11.1%)"
    )
    report("Fig. 15: IPC and performance vs the age matrix", table + "\n" + extra)

    pubs, age, both = (out[l]["dbp"] for l in ("PUBS", "AGE", "PUBS+AGE"))
    # All three criticality-aware schemes help D-BP IPC.
    assert pubs > 3 and age > 0
    # Combining the two orthogonal priority views beats either alone.
    assert both > pubs - 0.5 and both > age - 0.5
    # PUBS and AGE are close in IPC (within a few points, as in the paper).
    assert abs(pubs - age) < 6.0
    # Fig. 15(b)'s conclusion: with the clock penalty, PUBS wins clearly.
    assert out["perf_pubs_over_age"] > 5.0
