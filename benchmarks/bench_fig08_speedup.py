"""Figure 8: speedup of PUBS over the base, per program.

Paper's headline: +7.8% geometric mean over the difficult-branch-prediction
(D-BP) programs, max 19.2% (sjeng), min 0.3% (mcf); no adverse effect on
the easy (E-BP) set.
"""

from common import all_workloads, gm_percent, prefetch, run_cached

from repro import ProcessorConfig
from repro.analysis import render_bar_chart, render_table

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()


def _run_figure8():
    rows = []
    prefetch(all_workloads(), [BASE, PUBS])
    for name in all_workloads():
        base = run_cached(name, BASE)
        pubs = run_cached(name, PUBS)
        rows.append({
            "name": name,
            "speedup": pubs.stats.ipc / base.stats.ipc,
            "branch_mpki": base.stats.branch_mpki,
            "llc_mpki": base.stats.llc_mpki,
            "dbp": base.stats.is_difficult_branch_prediction,
        })
    return rows


def test_fig08_speedup(benchmark, report):
    rows = benchmark.pedantic(_run_figure8, rounds=1, iterations=1)
    dbp = [r for r in rows if r["dbp"]]
    ebp = [r for r in rows if not r["dbp"]]
    gm_dbp = gm_percent(r["speedup"] for r in dbp)
    gm_ebp = gm_percent(r["speedup"] for r in ebp)

    dbp_sorted = sorted(dbp, key=lambda r: r["name"])
    chart = render_bar_chart(
        [r["name"] for r in dbp_sorted] + ["GM diff", "GM easy"],
        [(r["speedup"] - 1) * 100 for r in dbp_sorted] + [gm_dbp, gm_ebp],
        unit="%",
    )
    detail = render_table(
        ["program", "set", "speedup %", "branch MPKI", "LLC MPKI"],
        [[r["name"], "D-BP" if r["dbp"] else "E-BP",
          (r["speedup"] - 1) * 100, r["branch_mpki"], r["llc_mpki"]]
         for r in sorted(rows, key=lambda r: -r["branch_mpki"])],
    )
    report("Fig. 8: PUBS speedup over base (paper: GM D-BP +7.8%, max "
           "sjeng 19.2%, min mcf 0.3%)", chart + "\n\n" + detail)

    # Shape assertions (paper's qualitative claims).
    assert len(dbp) >= 8, "a healthy D-BP population"
    assert 4.0 < gm_dbp < 15.0, f"GM D-BP {gm_dbp:.1f}% should be several %"
    assert abs(gm_ebp) < 2.5, f"E-BP must be unaffected, got {gm_ebp:.1f}%"
    by_name = {r["name"]: r for r in rows}
    best = max(dbp, key=lambda r: r["speedup"])
    assert best["name"] == "sjeng", f"max should be sjeng, got {best['name']}"
    assert 0.10 < best["speedup"] - 1 < 0.35
    assert abs(by_name["mcf"]["speedup"] - 1) < 0.03, "mcf ~ 0.3% in the paper"
    assert by_name["mcf"]["dbp"], "mcf is D-BP despite its ~0 speedup"
