"""Ablation (Sec. III-B1): the three IQ organizations' IPC.

The paper's taxonomy predicts: the shifting (age-compacting) queue has the
best IPC because position priority equals age priority; the circular queue
loses capacity to lingering holes and priority order to wrap-around; the
random queue (the modern baseline PUBS builds on) is worst without help.
The age matrix and PUBS then recover IPC for the random queue without the
shifting queue's critical-path compaction circuit.
"""

from common import SWEEP_PROGRAMS, gm_percent, run_cached

from repro import ProcessorConfig
from repro.analysis import render_table

BASE = ProcessorConfig.cortex_a72_like()
ORGS = {
    "random": BASE,
    "circular": BASE.with_overrides(iq_organization="circular"),
    "shifting": BASE.with_overrides(iq_organization="shifting"),
    "random+AGE": BASE.with_age_matrix(),
    "random+PUBS": BASE.with_pubs(),
}


def _run_ablation():
    out = {}
    for label, cfg in ORGS.items():
        ipcs = {}
        for prog in SWEEP_PROGRAMS:
            ipcs[prog] = run_cached(prog, cfg).stats.ipc
        out[label] = ipcs
    return out


def test_ablation_iq_organizations(benchmark, report):
    out = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    base_ipc = out["random"]
    rows = []
    for label in ORGS:
        gm = gm_percent(out[label][p] / base_ipc[p] for p in SWEEP_PROGRAMS)
        rows.append([label, gm])
    report(
        "Ablation (Sec. III-B1): IQ organizations, IPC vs the random queue",
        render_table(["organization", "GM IPC vs random %"], rows),
    )

    gms = dict((label, gm) for label, gm in rows)
    # The paper's taxonomy ordering.
    assert gms["shifting"] > gms["circular"] > gms["random"] == 0.0
    # Criticality-aware selection lets the random queue approach (or beat)
    # the age-ordered organizations without their circuit costs.
    assert gms["random+AGE"] > 0.0
    assert gms["random+PUBS"] > 0.0
