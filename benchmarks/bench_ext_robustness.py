"""Extension: seed-sweep robustness of the headline result.

The paper reports one number per program from 100M-instruction runs; our
runs are short, so this bench re-runs the best case (sjeng) and a control
(hmmer) under several independent memory seeds and reports mean +/- s.e.
The headline claim must clear significance, not just a point estimate.
"""

from common import INSTRUCTIONS, SKIP

from repro import ProcessorConfig
from repro.analysis import speedup_is_significant, sweep_speedup
from repro.analysis.report import render_table

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()
SEEDS = [11, 23, 37, 51]


def _run_sweeps():
    return {
        name: sweep_speedup(name, BASE, PUBS, seeds=SEEDS,
                            instructions=INSTRUCTIONS // 2, skip=SKIP // 2)
        for name in ("sjeng", "hmmer")
    }


def test_ext_seed_robustness(benchmark, report):
    sweeps = benchmark.pedantic(_run_sweeps, rounds=1, iterations=1)
    table = render_table(
        ["workload", "mean speedup", "std err", "min", "max", "n"],
        [[name, s.mean, s.stderr, s.minimum, s.maximum, s.n]
         for name, s in sweeps.items()],
    )
    report(
        "Extension: PUBS speedup across independent data seeds "
        "(mean +/- standard error)",
        table,
    )
    # The headline speedup survives data randomness: significant, and
    # positive under every single seed.
    assert speedup_is_significant(sweeps["sjeng"], threshold=1.0)
    assert sweeps["sjeng"].minimum > 1.0
    # ...while the easy control stays pinned near 1.0.
    assert abs(sweeps["hmmer"].mean - 1.0) < 0.06
    assert sweeps["sjeng"].mean > sweeps["hmmer"].mean
