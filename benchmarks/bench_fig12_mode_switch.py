"""Figure 12: effectiveness of the mode switch.

Paper: most programs are indifferent, but memory-sensitive mcf and soplex
degrade when the mode switch is disabled (reserved priority entries then
cost IQ capacity exactly when MLP matters most).
"""

from common import SWEEP_PROGRAMS, gm_percent, speedups

from repro import ProcessorConfig, PubsConfig
from repro.analysis import render_table

BASE = ProcessorConfig.cortex_a72_like()
ON = BASE.with_pubs(PubsConfig(mode_switch_enabled=True))
OFF = BASE.with_pubs(PubsConfig(mode_switch_enabled=False))

#: The memory-sensitive programs the paper highlights, plus the usual
#: compute subset as controls.
PROGRAMS = ["mcf", "soplex"] + [p for p in SWEEP_PROGRAMS if p not in ("mcf", "soplex")]


def _run_figure12():
    with_switch = speedups(PROGRAMS, BASE, ON)
    without_switch = speedups(PROGRAMS, BASE, OFF)
    return with_switch, without_switch


def test_fig12_mode_switch(benchmark, report):
    with_switch, without_switch = benchmark.pedantic(
        _run_figure12, rounds=1, iterations=1)
    table = render_table(
        ["program", "mode switch ON %", "mode switch OFF %"],
        [[name, (with_switch[name] - 1) * 100, (without_switch[name] - 1) * 100]
         for name in PROGRAMS]
        + [["GM", gm_percent(with_switch.values()),
            gm_percent(without_switch.values())]],
    )
    report(
        "Fig. 12: PUBS speedup with the mode switch enabled vs disabled "
        "(paper: mcf and soplex degrade when disabled)",
        table,
    )

    # The paper's highlighted programs must not lose from PUBS when the
    # mode switch protects them...
    for name in ("mcf", "soplex"):
        assert with_switch[name] > 0.985, f"{name} protected by mode switch"
        # ...and the switch must help (or at least not hurt) them.
        assert with_switch[name] >= without_switch[name] - 0.005, name
    # Compute-intensive programs are indifferent to the switch.
    for name in PROGRAMS:
        if name in ("mcf", "soplex"):
            continue
        delta = abs(with_switch[name] - without_switch[name])
        assert delta < 0.05, f"{name} should be mode-switch-insensitive"
