"""Top-down cycle accounting: suite table, stress gate, and PUBS movers.

Three gates over the topdown hierarchy (DESIGN.md §15):

1. The base-machine suite table for mcf/sjeng/gcc: every breakdown's
   level-1 fractions sum to 1 and its CPI contributions sum to the CPI
   (the accounting laws, here checked end-to-end through the cached
   executor path rather than a live pipeline).
2. Each stress family that declares a dominant bucket actually lands
   there -- the hierarchy agrees with the bottleneck contracts.
3. Base-vs-PUBS comparison: on every D-BP program where PUBS helps, the
   bucket that moves most is ``bad_speculation`` (PUBS attacks the
   misspeculation penalty, not the backend), and the E_wait IQ
   component shrinks.
"""

from common import prefetch, run_cached

from repro import ProcessorConfig
from repro.analysis import render_table
from repro.analysis.topdown import (LEVEL1, breakdown_of, compare_topdown,
                                    suite_table_rows)
from repro.workloads.stress import FAMILIES, run_family

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()
SUITE = ["mcf", "sjeng", "gcc"]


def _run_suite():
    prefetch(SUITE, [BASE, PUBS])
    return {name: (run_cached(name, BASE), run_cached(name, PUBS))
            for name in SUITE}


def test_topdown_suite_accounting(benchmark, report):
    results = benchmark.pedantic(_run_suite, rounds=1, iterations=1)
    breakdowns = [breakdown_of(base, name=name)
                  for name, (base, _) in results.items()]
    headers, rows = suite_table_rows(breakdowns)
    report("Top-down suite table (base machine, mcf/sjeng/gcc)",
           render_table(headers, rows))
    for bd in breakdowns:
        fractions = [bd.fraction(bucket) for bucket in LEVEL1]
        assert abs(sum(fractions) - 1.0) < 1e-12
        contributions = sum(bd.cpi_contribution(b) for b in LEVEL1)
        assert abs(contributions - bd.cpi) < 1e-9


def test_topdown_stress_dominance(benchmark, report):
    declared = {name: fam.topdown for name, fam in FAMILIES.items()
                if fam.topdown is not None}

    def _run():
        out = {}
        for name in sorted(declared):
            reportobj = run_family(FAMILIES[name], sweep=False)
            assert reportobj.passed, "\n" + reportobj.render()
            out[name] = reportobj
        return out

    reports = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name in sorted(declared):
        outcome = next(o for o in reports[name].outcomes
                       if "dominant topdown bucket" in o.description)
        assert outcome.passed, outcome.render()
        rows.append([name, declared[name], outcome.observed])
    report("Top-down stress gate: declared vs observed dominant bucket",
           render_table(["family", "declared", "observed"], rows))


def test_topdown_pubs_mover(benchmark, report):
    results = benchmark.pedantic(_run_suite, rounds=1, iterations=1)
    rows = []
    for name, (base, variant) in results.items():
        delta = compare_topdown(breakdown_of(base, name=name),
                                breakdown_of(variant, name=name))
        rows.append([name, delta.cpi_delta, delta.mover,
                     delta.contributions["bad_speculation"]])
        # The deltas decompose the CPI change exactly.
        assert abs(sum(delta.contributions.values())
                   - delta.cpi_delta) < 1e-9
        if delta.cpi_delta < -0.01:  # PUBS helped: misspec is the mover
            assert delta.mover == "bad_speculation", (
                f"{name}: expected bad_speculation to move most, "
                f"got {delta.mover}")
        b_iq = base.stats.avg_missspec_iq_wait
        v_iq = variant.stats.avg_missspec_iq_wait
        assert v_iq < b_iq, (
            f"{name}: E_wait IQ component must shrink under PUBS "
            f"({b_iq:.1f} -> {v_iq:.1f})")
    report("Top-down PUBS movers (base -> PUBS, per program)",
           render_table(["workload", "dCPI", "mover", "d bad_spec"], rows))
