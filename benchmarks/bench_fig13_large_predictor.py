"""Figure 13: PUBS vs spending its hardware budget on a bigger predictor.

Paper: enlarging the perceptron to a 36-bit history and a 512-entry weight
table (+8.4 KB, more than double the default predictor and more than twice
the 4.0 KB PUBS budget) yields only marginal gains -- PUBS is the better
use of the transistors.
"""

from common import SWEEP_PROGRAMS, gm_percent, speedups

from repro import ProcessorConfig
from repro.analysis import render_table
from repro.core.pipeline import build_predictor

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()
BIG_PREDICTOR = BASE.with_overrides(predictor=BASE.predictor.enlarged())


def _run_figure13():
    pubs = speedups(SWEEP_PROGRAMS, BASE, PUBS)
    bigpred = speedups(SWEEP_PROGRAMS, BASE, BIG_PREDICTOR)
    return pubs, bigpred


def test_fig13_large_predictor(benchmark, report):
    pubs, bigpred = benchmark.pedantic(_run_figure13, rounds=1, iterations=1)
    small_kib = build_predictor(BASE).storage_kib()
    big_kib = build_predictor(BIG_PREDICTOR).storage_kib()
    table = render_table(
        ["program", "PUBS (+4.0KB) %", "large predictor (+%.1fKB) %%" % (
            big_kib - small_kib)],
        [[name, (pubs[name] - 1) * 100, (bigpred[name] - 1) * 100]
         for name in SWEEP_PROGRAMS]
        + [["GM", gm_percent(pubs.values()), gm_percent(bigpred.values())]],
    )
    report(
        "Fig. 13: PUBS vs enlarged branch predictor (paper: the larger "
        "predictor's gain is marginal; PUBS wins)",
        table,
    )

    gm_pubs = gm_percent(pubs.values())
    gm_pred = gm_percent(bigpred.values())
    assert gm_pubs > gm_pred + 1.0, (
        f"PUBS ({gm_pubs:.1f}%) must clearly beat the large predictor "
        f"({gm_pred:.1f}%)"
    )
    assert gm_pred < 5.0, "predictor enlargement is marginal"
    assert big_kib - small_kib > 2 * 4.0, "the predictor got the bigger budget"
