"""Benchmark-harness plumbing.

Each bench regenerates one of the paper's tables or figures and registers
its rendered text through the ``report`` fixture; the texts are printed in
the terminal summary (so they survive pytest's output capture and land in
``bench_output.txt``).
"""

import pytest

_SECTIONS = []


@pytest.fixture
def report():
    """Collect a rendered table/figure for the end-of-run summary."""

    def _report(title: str, text: str) -> None:
        _SECTIONS.append((title, text))

    return _report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _SECTIONS:
        return
    terminalreporter.write_sep("=", "PUBS reproduction: regenerated tables and figures")
    for title, text in _SECTIONS:
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
