"""Figure 11: sensitivity to the confidence counter width, plus "blind".

Paper: wider resetting counters are more pessimistic, raising the
unconfident-branch rate (71% at the 6-bit optimum); aggressive estimation
is beneficial, but the "blind" model (all branches unconfident, no
conf_tab) underperforms PUBS-with-conf_tab.
"""

from common import SWEEP_PROGRAMS, gm_percent, run_cached, speedups

from repro import ProcessorConfig, PubsConfig
from repro.analysis import render_table

BASE = ProcessorConfig.cortex_a72_like()
COUNTER_BITS = [2, 3, 4, 5, 6, 7, 8]


def _unconfident_rate(cfg):
    total_branches = 0
    total_unconfident = 0
    for name in SWEEP_PROGRAMS:
        r = run_cached(name, cfg)
        total_branches += r.tracker_stats.branch_decodes
        total_unconfident += r.tracker_stats.unconfident_branch_decodes
    return total_unconfident / total_branches if total_branches else 0.0


def _run_figure11():
    results = {}
    for bits in COUNTER_BITS:
        cfg = BASE.with_pubs(PubsConfig(conf_counter_bits=bits))
        gm = gm_percent(speedups(SWEEP_PROGRAMS, BASE, cfg).values())
        results[bits] = (gm, _unconfident_rate(cfg))
    blind_cfg = BASE.with_pubs(PubsConfig(blind=True))
    gm = gm_percent(speedups(SWEEP_PROGRAMS, BASE, blind_cfg).values())
    results["blind"] = (gm, _unconfident_rate(blind_cfg))
    return results


def test_fig11_confidence_counter_bits(benchmark, report):
    results = benchmark.pedantic(_run_figure11, rounds=1, iterations=1)
    table = render_table(
        ["counter bits", "GM speedup %", "unconfident branch rate"],
        [[str(k), results[k][0], results[k][1]]
         for k in COUNTER_BITS + ["blind"]],
    )
    report(
        "Fig. 11: speedup and unconfident-branch rate vs counter bits "
        "(paper: rate grows with bits, ~71% at 6 bits; blind < PUBS)",
        table,
    )

    rates = {bits: results[bits][1] for bits in COUNTER_BITS}
    gms = {bits: results[bits][0] for bits in COUNTER_BITS}
    # Resetting counters: more bits => longer saturation road => more
    # unconfident estimates.
    assert rates[8] > rates[2], "rate must grow with counter width"
    assert all(0.0 <= rates[b] <= 1.0 for b in COUNTER_BITS)
    assert results["blind"][1] == 1.0, "blind marks every branch unconfident"
    # Aggressive (>=4-bit) estimation is not worse than conservative 2-bit.
    assert max(gms[b] for b in (4, 5, 6, 7, 8)) >= gms[2] - 0.5
    # The blind model works but the conf_tab earns its cost.
    best = max(gms.values())
    assert results["blind"][0] < best, "blind must trail tuned conf_tab"
    assert results["blind"][0] > -2.0, "blind is still roughly neutral-positive"
