"""Table III: hardware cost of the PUBS tables.

Paper: def_tab + brslice_tab + conf_tab total 4.0 KB with hashed tags
(Sec. IV); a full-tag implementation would be several times larger.
"""

from repro import PubsConfig, pubs_hardware_cost
from repro.analysis import render_table
from repro.pubs import unhashed_cost


def _run_table3():
    hashed = pubs_hardware_cost(PubsConfig())
    full = unhashed_cost(PubsConfig())
    return hashed, full


def test_tab03_hardware_cost(benchmark, report):
    hashed, full = benchmark.pedantic(_run_table3, rounds=1, iterations=1)
    table = render_table(
        ["table", "hashed tags (KB)", "full tags (KB)"],
        [
            ["def_tab", hashed.def_tab_kib, full.def_tab_kib],
            ["brslice_tab", hashed.brslice_tab_kib, full.brslice_tab_kib],
            ["conf_tab", hashed.conf_tab_kib, full.conf_tab_kib],
            ["total", hashed.total_kib, full.total_kib],
        ],
    )
    report("Table III: PUBS hardware cost (paper: 4.0 KB total)", table)

    assert 3.5 < hashed.total_kib < 4.2, f"total {hashed.total_kib:.2f} KB"
    assert full.total_kib > 4 * hashed.total_kib, "hashing earns its keep"
    assert hashed.brslice_tab_kib > hashed.conf_tab_kib > hashed.def_tab_kib
