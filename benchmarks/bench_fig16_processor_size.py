"""Figure 16 / Table IV: IPC sensitivity to processor size.

Paper: PUBS, AGE and PUBS+AGE all become *more* effective as the processor
grows (window capacity scales faster than issue resources, so issue
conflicts increase); PUBS+AGE leads at every size.  Clock effects are
ignored here, as in the paper's Fig. 16.
"""

from common import gm_percent, speedups

from repro import PubsConfig, size_models
from repro.analysis import render_table

SIZES = ["small", "medium", "large", "huge"]
#: Compute-bound D-BP programs (size scaling is about issue conflicts, so
#: memory-bound programs would only add noise).
PROGRAMS = ["sjeng", "gobmk", "gcc", "bzip2", "perlbench"]

#: Each machine's priority partition is sized by its own Fig.-10-style
#: sweep, just as the paper derived 6 for its medium machine: a bigger
#: window holds more concurrent unconfident slices and needs a bigger
#: partition (re-derivable with examples/design_space.py per model).
PRIORITY_ENTRIES = {"small": 8, "medium": 6, "large": 12, "huge": 16}


def _run_figure16():
    models = size_models()
    out = {}
    for size in SIZES:
        base = models[size]
        pubs = PubsConfig(priority_entries=PRIORITY_ENTRIES[size])
        for label, cfg in (
            ("PUBS", base.with_pubs(pubs)),
            ("AGE", base.with_age_matrix()),
            ("PUBS+AGE", base.with_pubs(pubs).with_age_matrix()),
        ):
            out[(size, label)] = gm_percent(
                speedups(PROGRAMS, base, cfg).values())
    return out


def test_fig16_processor_size(benchmark, report):
    out = benchmark.pedantic(_run_figure16, rounds=1, iterations=1)
    models = size_models()
    table4 = render_table(
        ["size", "width", "IQ", "LSQ", "ROB", "int regs", "fp regs",
         "priority entries"],
        [[s, models[s].issue_width, models[s].iq_size, models[s].lsq_size,
          models[s].rob_size, models[s].int_phys_regs,
          models[s].fp_phys_regs, PRIORITY_ENTRIES[s]] for s in SIZES],
    )
    table = render_table(
        ["size", "PUBS %", "AGE %", "PUBS+AGE %"],
        [[size, out[(size, "PUBS")], out[(size, "AGE")],
          out[(size, "PUBS+AGE")]] for size in SIZES],
    )
    report(
        "Table IV / Fig. 16: processor size models and IPC increase "
        "(paper: effectiveness grows with size; PUBS+AGE leads)",
        table4 + "\n\n" + table,
    )

    # Criticality-aware selection gains grow with processor size (the
    # paper's central Fig. 16 claim), for PUBS and AGE alike.
    pubs_series = [out[(s, "PUBS")] for s in SIZES]
    assert pubs_series == sorted(pubs_series), (
        f"PUBS gains must grow with size: {pubs_series}"
    )
    assert out[("huge", "PUBS")] > out[("small", "PUBS")] + 3.0
    assert out[("huge", "AGE")] > out[("small", "AGE")]
    # The combination is at least competitive with PUBS alone everywhere.
    for size in SIZES:
        assert out[(size, "PUBS+AGE")] > out[(size, "PUBS")] - 2.0, size
    # Every scheme helps at every size (non-negative GM).
    for key, value in out.items():
        assert value > -1.0, key
